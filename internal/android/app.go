package android

import (
	"errors"
	"fmt"
	"net/netip"

	"borderpatrol/internal/dex"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
)

// NetOp describes the network side effect of one app functionality: where
// it connects and what it transfers.
type NetOp struct {
	// Endpoint is the server the functionality talks to.
	Endpoint netip.AddrPort
	// Host is the HTTP Host header / DNS name (several endpoints can share
	// one IP, several names can resolve to one endpoint).
	Host string
	// Method is the HTTP method (GET for downloads, PUT/POST for uploads).
	Method string
	// Path is the request path.
	Path string
	// PayloadBytes is the request body size (upload volume).
	PayloadBytes int
	// Requests is how many requests ride the same socket (keep-alive); at
	// least 1.
	Requests int
	// Chunks splits the transfer across this many sockets (apps evading
	// flow-size thresholds fragment uploads; paper §VII); at least 1.
	Chunks int
	// UseNativeSocket bypasses the Java socket API entirely (libc/syscall
	// path the Xposed-based Context Manager cannot hook; paper §VII
	// "Native functions"). These packets leave the device untagged.
	UseNativeSocket bool
	// Proto selects the transport protocol: ipv4.ProtoTCP (the zero-value
	// default) sends HTTP requests over a TCP connection; ipv4.ProtoUDP
	// sends Datagram payloads (e.g. DNS queries) with no handshake.
	Proto byte
	// Datagram is the raw application payload sent per request on UDP
	// functionality (ignored for TCP, where the HTTP request is built
	// from Method/Path/Host/PayloadBytes).
	Datagram []byte
}

func (op *NetOp) normalize() NetOp {
	n := *op
	if n.Requests < 1 {
		n.Requests = 1
	}
	if n.Chunks < 1 {
		n.Chunks = 1
	}
	if n.Method == "" {
		n.Method = "GET"
	}
	if n.Path == "" {
		n.Path = "/"
	}
	if n.Proto == 0 {
		n.Proto = ipv4.ProtoTCP
	}
	return n
}

// Functionality is one user-reachable behaviour of an app: a call path
// through developer and/or library code that ends in network traffic.
type Functionality struct {
	// Name identifies the functionality ("login", "upload", "analytics").
	Name string
	// Desirable records the corporate view of the functionality, used by
	// experiments to score enforcement precision (not visible to the
	// enforcement path).
	Desirable bool
	// CallPath is the app-code portion of the stack, outermost first; each
	// frame must reference a method defined in the app's dex files.
	CallPath []dex.Frame
	// Op is the network side effect.
	Op NetOp
	// Weight biases the monkey exerciser's choice of events toward common
	// functionality (>= 0; 0 means never triggered randomly).
	Weight float64
}

// Profile separates work and personal apps on a provisioned device.
type Profile int

// Profiles.
const (
	// ProfileWork apps are subject to BYOD provisioning and tagging.
	ProfileWork Profile = iota + 1
	// ProfilePersonal apps run outside the work container: the Context
	// Manager does not interact with them (paper §VII "Compatibility").
	ProfilePersonal
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileWork:
		return "work"
	case ProfilePersonal:
		return "personal"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// App is an installed application: the apk, its behaviour graph, and its
// single emulated UI thread.
type App struct {
	APK     *dex.APK
	UID     int
	Profile Profile
	device  *Device
	thread  *Thread
	// funcs maps functionality name to definition.
	funcs map[string]*Functionality
	// order preserves registration order for deterministic iteration.
	order []string
}

// Thread returns the app's emulated main thread.
func (a *App) Thread() *Thread { return a.thread }

// Functionalities returns functionality names in registration order.
func (a *App) Functionalities() []string {
	return append([]string(nil), a.order...)
}

// Functionality returns a functionality by name.
func (a *App) Functionality(name string) (*Functionality, bool) {
	f, ok := a.funcs[name]
	return f, ok
}

// ErrUnknownFunctionality reports an Invoke of an undefined behaviour.
var ErrUnknownFunctionality = errors.New("android: unknown functionality")

// baseFrames is the framework prologue under every Android app stack.
// None of these classes exist in app dex files, so the Context Manager's
// frame resolution filters them out — mirroring real stack traces where
// framework frames carry no app context.
var baseFrames = []dex.Frame{
	{Class: "com/android/internal/os/ZygoteInit", Method: "main", File: "ZygoteInit.java", Line: 801},
	{Class: "android/app/ActivityThread", Method: "main", File: "ActivityThread.java", Line: 6119},
	{Class: "android/os/Looper", Method: "loop", File: "Looper.java", Line: 154},
	{Class: "android/os/Handler", Method: "dispatchMessage", File: "Handler.java", Line: 102},
}

// socketFrames is the java.net epilogue between app code and the socket
// syscall.
var socketFrames = []dex.Frame{
	{Class: "java/net/Socket", Method: "connect", File: "Socket.java", Line: 586},
	{Class: "java/net/AbstractPlainSocketImpl", Method: "connect", File: "AbstractPlainSocketImpl.java", Line: 334},
}

// InvokeResult reports what one functionality execution emitted.
type InvokeResult struct {
	// Packets are the wire packets that left the device (post device-side
	// netfilter), in order.
	Packets []*ipv4.Packet
	// Tagged reports whether the first packet carried a BorderPatrol tag.
	Tagged bool
	// SocketFDs are the kernel fds used, one per chunk.
	SocketFDs []int
}

// Invoke executes a functionality end to end: builds the Java call stack,
// connects (firing Xposed hooks), sends the HTTP request(s), and closes the
// socket. It returns every packet that survived device-side filtering.
func (a *App) Invoke(name string) (*InvokeResult, error) {
	f, ok := a.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrUnknownFunctionality, name, a.APK.PackageName)
	}
	op := f.Op.normalize()
	res := &InvokeResult{}

	a.thread.PushAll(baseFrames)
	a.thread.PushAll(f.CallPath)
	defer a.thread.PopN(len(baseFrames) + len(f.CallPath))

	perChunk := op.PayloadBytes / op.Chunks
	for chunk := 0; chunk < op.Chunks; chunk++ {
		var payload []byte
		if op.Proto == ipv4.ProtoUDP {
			// Datagram functionality sends its raw payload (a DNS query,
			// typically) — no HTTP framing, no keep-alive semantics.
			payload = op.Datagram
			if payload == nil {
				payload = make([]byte, perChunk)
				for i := range payload {
					payload[i] = byte('A' + (i+chunk)%26)
				}
			}
		} else {
			body := make([]byte, perChunk)
			for i := range body {
				body[i] = byte('A' + (i+chunk)%26)
			}
			req := &httpsim.Request{
				Method:    op.Method,
				Path:      op.Path,
				Host:      op.Host,
				KeepAlive: op.Requests > 1,
				Body:      body,
			}
			payload = req.Marshal()
		}

		if op.UseNativeSocket {
			// Native path: direct syscalls, no Java socket, no hooks.
			pkts, fd, err := a.invokeNative(op, payload)
			if err != nil {
				return res, err
			}
			res.Packets = append(res.Packets, pkts...)
			res.SocketFDs = append(res.SocketFDs, fd)
			continue
		}

		a.thread.PushAll(socketFrames)
		sock := a.device.stack.NewJavaSocket(a.UID)
		if op.Proto == ipv4.ProtoUDP {
			sock = a.device.stack.NewDatagramSocket(a.UID)
		}
		err := sock.Connect(op.Endpoint)
		a.thread.PopN(len(socketFrames))
		if err != nil {
			return res, fmt.Errorf("android: %s/%s connect: %w", a.APK.PackageName, name, err)
		}
		res.SocketFDs = append(res.SocketFDs, sock.FD())
		// One TCP connection per socket: the SYN opens it (carrying the
		// tag the post-connect hook just set), the requests ride it — a
		// keep-alive train when Requests > 1 — and the FIN closes it,
		// driving the gateway's conntrack teardown. UDP and legacy
		// raw-payload kernels emit no lifecycle segments (nil packets).
		syn, err := sock.Handshake()
		if err != nil {
			_ = sock.Close()
			return res, fmt.Errorf("android: %s/%s handshake: %w", a.APK.PackageName, name, err)
		}
		if syn != nil {
			res.Packets = append(res.Packets, syn)
		}
		for r := 0; r < op.Requests; r++ {
			pkt, err := sock.Send(payload)
			if err != nil {
				_ = sock.Close()
				return res, fmt.Errorf("android: %s/%s send: %w", a.APK.PackageName, name, err)
			}
			if pkt != nil {
				res.Packets = append(res.Packets, pkt)
			}
		}
		fin, err := sock.Finish()
		if err != nil {
			_ = sock.Close()
			return res, fmt.Errorf("android: %s/%s shutdown: %w", a.APK.PackageName, name, err)
		}
		if fin != nil {
			res.Packets = append(res.Packets, fin)
		}
		if err := sock.Close(); err != nil {
			return res, fmt.Errorf("android: %s/%s close: %w", a.APK.PackageName, name, err)
		}
	}
	if len(res.Packets) > 0 {
		_, res.Tagged = res.Packets[0].Header.FindOption(ipv4.OptSecurity)
	}
	return res, nil
}

// invokeNative models an app component that calls socket(2)/connect(2)
// through libc, bypassing the hookable Java API. The kernel still builds
// real transport segments for it — the SYN/data/FIN just leave untagged,
// which is exactly what the enforcer's untagged-drop posture catches.
func (a *App) invokeNative(op NetOp, payload []byte) ([]*ipv4.Packet, int, error) {
	k := a.device.stack.Kernel()
	fd := k.Socket(a.UID, op.Proto)
	local := netip.AddrPortFrom(a.device.stack.LocalAddr(), 39000+uint16(fd%1000))
	if err := k.Connect(fd, local, op.Endpoint); err != nil {
		return nil, fd, fmt.Errorf("android: native connect: %w", err)
	}
	var pkts []*ipv4.Packet
	appendOK := func(pkt *ipv4.Packet, err error) error {
		if err != nil && !errors.Is(err, kernel.ErrNoQueueHandler) {
			return err
		}
		if pkt != nil {
			pkts = append(pkts, pkt)
		}
		return nil
	}
	if err := appendOK(k.Handshake(fd)); err != nil {
		return pkts, fd, fmt.Errorf("android: native handshake: %w", err)
	}
	for r := 0; r < op.Requests; r++ {
		if err := appendOK(k.Send(fd, payload)); err != nil {
			return pkts, fd, fmt.Errorf("android: native send: %w", err)
		}
	}
	if err := appendOK(k.Shutdown(fd)); err != nil {
		return pkts, fd, fmt.Errorf("android: native shutdown: %w", err)
	}
	if err := k.Close(fd); err != nil {
		return pkts, fd, err
	}
	return pkts, fd, nil
}
