// Package android simulates the BYOD-provisioned Android device the
// Context Manager runs on (paper §III, §V-B): a patched kernel, a network
// stack with Java socket semantics, per-app sandboxes forked from zygote
// (distinct uids), work/personal profile separation, and an Xposed-like
// framework that lets a provisioned module hook socket creation without
// modifying apps.
package android

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"borderpatrol/internal/dex"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/netstack"
	"borderpatrol/internal/policy"
)

// Config selects how a device is provisioned.
type Config struct {
	// Addr is the device's network address.
	Addr netip.Addr
	// Kernel configures the simulated Linux kernel (the paper's patch and
	// optional set-once hardening).
	Kernel kernel.Config
	// XposedInstalled controls whether modules can hook at all; an
	// unprovisioned stock image runs apps without any hooking.
	XposedInstalled bool
}

// Module is an Xposed-style instrumentation module. The Context Manager is
// the only module BorderPatrol ships, but the interface keeps the
// provisioning surface explicit.
type Module interface {
	// Name identifies the module.
	Name() string
	// HandleLoadPackage runs when an app is installed/loaded, mirroring
	// Xposed's handleLoadPackage callback: the module may parse the app's
	// dex files and register hooks.
	HandleLoadPackage(app *App) error
}

// ContextSink receives the device's self-reported context signals — the
// MDM/agent channel of the contextual policy dimension. devctx.Source
// satisfies it; the device never imports the gateway side.
type ContextSink interface {
	SetNetwork(addr netip.Addr, class policy.NetworkClass)
	SetScreenLocked(addr netip.Addr, locked bool)
	SetPatchAge(addr netip.Addr, days int32)
	ObserveLocation(addr netip.Addr, lat, lon float64)
}

// Device is one simulated smart device.
type Device struct {
	mu      sync.Mutex
	cfg     Config
	kern    *kernel.Kernel
	stack   *netstack.Stack
	ctx     ContextSink
	modules []Module
	// apps by uid; uids start at firstAppUID like Android's app sandboxes.
	apps  map[int]*App
	byPkg map[string]*App
	next  int
}

// firstAppUID is the first uid Android assigns to installed apps.
const firstAppUID = 10001

// Errors for device operations.
var (
	ErrNoXposed     = errors.New("android: Xposed framework not installed")
	ErrAppInstalled = errors.New("android: app already installed")
	ErrAppNotFound  = errors.New("android: app not found")
)

// NewDevice provisions a device.
func NewDevice(cfg Config) *Device {
	k := kernel.New(cfg.Kernel)
	return &Device{
		cfg:   cfg,
		kern:  k,
		stack: netstack.NewStack(k, cfg.Addr),
		apps:  make(map[int]*App),
		byPkg: make(map[string]*App),
		next:  firstAppUID,
	}
}

// Kernel returns the device kernel.
func (d *Device) Kernel() *kernel.Kernel { return d.kern }

// Stack returns the device network stack.
func (d *Device) Stack() *netstack.Stack { return d.stack }

// Config returns the provisioning configuration.
func (d *Device) Config() Config { return d.cfg }

// BindContext connects the device to a gateway-side context sink: from now
// on Report* calls forward the device's context signals keyed by its
// address. A nil sink unbinds.
func (d *Device) BindContext(sink ContextSink) {
	d.mu.Lock()
	d.ctx = sink
	d.mu.Unlock()
}

// contextSink returns the bound sink, if any.
func (d *Device) contextSink() ContextSink {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctx
}

// ReportNetwork reports the network the device attached to (SSID roam,
// cellular handoff). No-op while unbound.
func (d *Device) ReportNetwork(class policy.NetworkClass) {
	if s := d.contextSink(); s != nil {
		s.SetNetwork(d.cfg.Addr, class)
	}
}

// ReportScreenLocked reports the device's screen-lock state.
func (d *Device) ReportScreenLocked(locked bool) {
	if s := d.contextSink(); s != nil {
		s.SetScreenLocked(d.cfg.Addr, locked)
	}
}

// ReportPatchAge reports the age in days of the device's security patch
// level.
func (d *Device) ReportPatchAge(days int32) {
	if s := d.contextSink(); s != nil {
		s.SetPatchAge(d.cfg.Addr, days)
	}
}

// ReportLocation reports a location fix; the sink derives the apparent
// travel velocity from successive fixes.
func (d *Device) ReportLocation(lat, lon float64) {
	if s := d.contextSink(); s != nil {
		s.ObserveLocation(d.cfg.Addr, lat, lon)
	}
}

// LoadModule installs an instrumentation module. It fails on stock images
// without Xposed — the paper's production story replaces this with
// vendor-provided BYOD ROMs, but the capability gate is the same.
func (d *Device) LoadModule(m Module) error {
	if !d.cfg.XposedInstalled {
		return fmt.Errorf("%w: cannot load %s", ErrNoXposed, m.Name())
	}
	d.mu.Lock()
	d.modules = append(d.modules, m)
	apps := make([]*App, 0, len(d.apps))
	for _, a := range d.apps {
		apps = append(apps, a)
	}
	d.mu.Unlock()
	// Late-loaded modules see already-installed apps.
	for _, a := range apps {
		if a.Profile == ProfileWork {
			if err := m.HandleLoadPackage(a); err != nil {
				return fmt.Errorf("android: module %s: %w", m.Name(), err)
			}
		}
	}
	return nil
}

// InstallApp installs an apk with its behaviour graph into a profile,
// forking a fresh sandbox (uid) from zygote. Work-profile apps are exposed
// to provisioned modules; personal-profile apps are not (paper §VII
// "Compatibility": the Context Manager does not interact with apps outside
// the work container).
func (d *Device) InstallApp(apk *dex.APK, funcs []Functionality, profile Profile) (*App, error) {
	if err := apk.Validate(); err != nil {
		return nil, fmt.Errorf("android: install: %w", err)
	}
	d.mu.Lock()
	if _, dup := d.byPkg[apk.PackageName]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAppInstalled, apk.PackageName)
	}
	app := &App{
		APK:     apk,
		UID:     d.next,
		Profile: profile,
		device:  d,
		thread:  NewThread(),
		funcs:   make(map[string]*Functionality, len(funcs)),
	}
	d.next++
	for i := range funcs {
		f := funcs[i]
		if _, dup := app.funcs[f.Name]; dup {
			d.mu.Unlock()
			return nil, fmt.Errorf("android: duplicate functionality %q in %s", f.Name, apk.PackageName)
		}
		app.funcs[f.Name] = &f
		app.order = append(app.order, f.Name)
	}
	d.apps[app.UID] = app
	d.byPkg[apk.PackageName] = app
	modules := append([]Module(nil), d.modules...)
	d.mu.Unlock()

	if profile == ProfileWork {
		for _, m := range modules {
			if err := m.HandleLoadPackage(app); err != nil {
				return nil, fmt.Errorf("android: module %s on %s: %w", m.Name(), apk.PackageName, err)
			}
		}
	}
	return app, nil
}

// AppByUID finds an installed app by its sandbox uid.
func (d *Device) AppByUID(uid int) (*App, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.apps[uid]
	return a, ok
}

// AppByPackage finds an installed app by its package name.
func (d *Device) AppByPackage(pkg string) (*App, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.byPkg[pkg]
	return a, ok
}

// Apps returns all installed apps (stable by uid order).
func (d *Device) Apps() []*App {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*App, 0, len(d.apps))
	for uid := firstAppUID; uid < d.next; uid++ {
		if a, ok := d.apps[uid]; ok {
			out = append(out, a)
		}
	}
	return out
}
