package android

import (
	"sync"

	"borderpatrol/internal/dex"
)

// Thread emulates a Java thread's call stack. App functionality execution
// pushes frames as methods "call" each other; getStackTrace snapshots them
// in Java order (innermost frame first), which is exactly what the Context
// Manager consumes (paper Fig. 2).
type Thread struct {
	mu     sync.Mutex
	frames []dex.Frame
}

// NewThread returns an empty thread.
func NewThread() *Thread { return &Thread{} }

// Push enters a method call.
func (t *Thread) Push(f dex.Frame) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.frames = append(t.frames, f)
}

// PushAll enters a sequence of calls outermost-first.
func (t *Thread) PushAll(fs []dex.Frame) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.frames = append(t.frames, fs...)
}

// Pop returns from the innermost call.
func (t *Thread) Pop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.frames) > 0 {
		t.frames = t.frames[:len(t.frames)-1]
	}
}

// PopN returns from the innermost n calls.
func (t *Thread) PopN(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.frames) {
		n = len(t.frames)
	}
	t.frames = t.frames[:len(t.frames)-n]
}

// Depth returns the current stack depth.
func (t *Thread) Depth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.frames)
}

// GetStackTrace mirrors java.lang.Thread#getStackTrace: a snapshot of the
// active frames, most-recent (innermost) first.
func (t *Thread) GetStackTrace() []dex.Frame {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]dex.Frame, len(t.frames))
	for i, f := range t.frames {
		out[len(t.frames)-1-i] = f
	}
	return out
}
