// Package extractor implements BorderPatrol's Policy Extractor (paper
// §V-E): the analysis tool that helps IT administrators derive policies.
// The administrator exercises an app twice — first driving only allowed
// functionality (the baseline profile), then driving the undesirable
// functionality. The extractor diffs the method signatures observed in the
// two runs' stack traces and emits deny rules, at the requested enforcement
// level, for the signatures unique to the second run.
package extractor

import (
	"fmt"
	"sort"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
)

// Profile is the set of method signatures observed in one guided run.
type Profile struct {
	// Signatures maps canonical signature strings to occurrence counts.
	Signatures map[string]int
	// Packets is how many tagged packets contributed.
	Packets int
}

// BuildProfile decodes every tagged packet in a capture into its stack
// signatures. The app resolves once per packet and the canonical strings
// come straight from the analyzer's cached table — no re-stringifying.
func BuildProfile(packets []*ipv4.Packet, db *analyzer.Database) (*Profile, error) {
	p := &Profile{Signatures: make(map[string]int)}
	for _, pkt := range packets {
		opt, ok := pkt.Header.FindOption(ipv4.OptSecurity)
		if !ok {
			continue
		}
		decoded, err := tag.Decode(opt.Data)
		if err != nil {
			continue
		}
		r, known := db.Resolve(decoded.AppHash)
		if !known {
			continue
		}
		// Validate the whole stack before counting anything, preserving the
		// all-or-nothing semantics of decoding: a packet with any bad index
		// contributes no signatures.
		ok = true
		for _, idx := range decoded.Indexes {
			if int(idx) >= r.Len() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		p.Packets++
		for _, idx := range decoded.Indexes {
			raw, err := r.SignatureString(idx)
			if err != nil {
				return nil, err // unreachable: indexes validated above
			}
			p.Signatures[raw]++
		}
	}
	return p, nil
}

// Diff returns the canonical signatures present in undesired but absent
// from baseline, sorted for determinism.
func Diff(baseline, undesired *Profile) []string {
	var unique []string
	for sig := range undesired.Signatures {
		if _, inBase := baseline.Signatures[sig]; !inBase {
			unique = append(unique, sig)
		}
	}
	sort.Strings(unique)
	return unique
}

// ExtractRules converts the unique signatures of the undesired run into
// deny rules at the requested level. Method-level rules target the exact
// signatures; class- and library-level rules collapse to the distinct
// class paths / packages involved.
func ExtractRules(baseline, undesired *Profile, level policy.Level) ([]policy.Rule, error) {
	unique := Diff(baseline, undesired)
	switch level {
	case policy.LevelMethod:
		rules := make([]policy.Rule, 0, len(unique))
		for _, raw := range unique {
			r := policy.Rule{Action: policy.Deny, Level: policy.LevelMethod, Target: raw}
			if err := r.Validate(); err != nil {
				return nil, fmt.Errorf("extractor: %w", err)
			}
			rules = append(rules, r)
		}
		return rules, nil
	case policy.LevelClass, policy.LevelLibrary:
		targets := make(map[string]struct{})
		for _, raw := range unique {
			sig, err := dex.ParseSignature(raw)
			if err != nil {
				return nil, fmt.Errorf("extractor: %w", err)
			}
			if level == policy.LevelClass {
				targets[sig.ClassPath()] = struct{}{}
			} else {
				targets[sig.Package] = struct{}{}
			}
		}
		sorted := make([]string, 0, len(targets))
		for t := range targets {
			sorted = append(sorted, t)
		}
		sort.Strings(sorted)
		rules := make([]policy.Rule, 0, len(sorted))
		for _, t := range sorted {
			r := policy.Rule{Action: policy.Deny, Level: level, Target: t}
			if err := r.Validate(); err != nil {
				return nil, fmt.Errorf("extractor: %w", err)
			}
			rules = append(rules, r)
		}
		return rules, nil
	default:
		return nil, fmt.Errorf("extractor: unsupported extraction level %s", level)
	}
}
