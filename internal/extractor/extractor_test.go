package extractor

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
)

func fixture(t *testing.T) (*dex.APK, *analyzer.Database) {
	t.Helper()
	apk := &dex.APK{
		PackageName: "com.corp.files",
		VersionCode: 1,
		Dexes: []*dex.File{{Classes: []dex.ClassDef{
			{Package: "com/corp/files", Name: "SyncEngine", Methods: []dex.MethodDef{
				{Name: "download", Proto: "()V", File: "S.java", StartLine: 1, EndLine: 10},
				{Name: "upload", Proto: "()V", File: "S.java", StartLine: 20, EndLine: 30},
				{Name: "login", Proto: "()V", File: "S.java", StartLine: 40, EndLine: 50},
			}},
		}}},
	}
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	return apk, db
}

func mkPkt(t *testing.T, apk *dex.APK, db *analyzer.Database, methods ...string) *ipv4.Packet {
	t.Helper()
	entry, _ := db.LookupTruncated(apk.Truncated())
	var indexes []uint32
	for _, m := range methods {
		for i, raw := range entry.Signatures {
			sig, _ := dex.ParseSignature(raw)
			if sig.Name == m {
				indexes = append(indexes, uint32(i))
			}
		}
	}
	if len(indexes) != len(methods) {
		t.Fatalf("index lookup failed for %v", methods)
	}
	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: indexes}
	data, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.5"),
		Dst: netip.MustParseAddr("162.125.4.1"),
	}}
	p.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: data})
	return p
}

func TestTwoRunDifferentialExtraction(t *testing.T) {
	apk, db := fixture(t)
	// Run 1: administrator exercises allowed functionality.
	base, err := BuildProfile([]*ipv4.Packet{
		mkPkt(t, apk, db, "login"),
		mkPkt(t, apk, db, "download"),
		mkPkt(t, apk, db, "login", "download"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	// Run 2: administrator invokes the undesirable upload.
	bad, err := BuildProfile([]*ipv4.Packet{
		mkPkt(t, apk, db, "login"), // login appears in both runs
		mkPkt(t, apk, db, "upload"),
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	if base.Packets != 3 || bad.Packets != 2 {
		t.Fatalf("profile packet counts: %d/%d", base.Packets, bad.Packets)
	}

	unique := Diff(base, bad)
	if len(unique) != 1 {
		t.Fatalf("diff = %v, want only upload", unique)
	}
	sig, err := dex.ParseSignature(unique[0])
	if err != nil || sig.Name != "upload" {
		t.Fatalf("unique = %v", unique)
	}

	rules, err := ExtractRules(base, bad, policy.LevelMethod)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Action != policy.Deny || rules[0].Level != policy.LevelMethod {
		t.Fatalf("rules = %v", rules)
	}

	// The extracted policy does what the administrator wanted: drops upload
	// packets, keeps login and download.
	eng, err := policy.NewEngine(rules, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	enfSig := func(name string) []dex.Signature {
		s, _ := dex.ParseSignature("Lcom/corp/files/SyncEngine;->" + name + "()V")
		return []dex.Signature{s}
	}
	if d := eng.Evaluate(apk.Truncated(), enfSig("upload")); d.Verdict != policy.VerdictDrop {
		t.Fatal("extracted rule does not drop upload")
	}
	if d := eng.Evaluate(apk.Truncated(), enfSig("download")); d.Verdict != policy.VerdictAllow {
		t.Fatal("extracted rule drops download")
	}
}

func TestExtractClassAndLibraryLevels(t *testing.T) {
	apk, db := fixture(t)
	base, _ := BuildProfile(nil, db)
	bad, err := BuildProfile([]*ipv4.Packet{mkPkt(t, apk, db, "upload", "download")}, db)
	if err != nil {
		t.Fatal(err)
	}
	classRules, err := ExtractRules(base, bad, policy.LevelClass)
	if err != nil {
		t.Fatal(err)
	}
	if len(classRules) != 1 || classRules[0].Target != "com/corp/files/SyncEngine" {
		t.Fatalf("class rules = %v", classRules)
	}
	libRules, err := ExtractRules(base, bad, policy.LevelLibrary)
	if err != nil {
		t.Fatal(err)
	}
	if len(libRules) != 1 || libRules[0].Target != "com/corp/files" {
		t.Fatalf("library rules = %v", libRules)
	}
}

func TestExtractUnsupportedLevel(t *testing.T) {
	apk, db := fixture(t)
	base, _ := BuildProfile(nil, db)
	bad, _ := BuildProfile([]*ipv4.Packet{mkPkt(t, apk, db, "upload")}, db)
	if _, err := ExtractRules(base, bad, policy.LevelHash); err == nil {
		t.Fatal("hash-level extraction accepted")
	}
}

func TestProfileSkipsUndecodable(t *testing.T) {
	_, db := fixture(t)
	plain := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.5"),
		Dst: netip.MustParseAddr("1.1.1.1"),
	}}
	p, err := BuildProfile([]*ipv4.Packet{plain}, db)
	if err != nil {
		t.Fatal(err)
	}
	if p.Packets != 0 || len(p.Signatures) != 0 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestEmptyDiffYieldsNoRules(t *testing.T) {
	apk, db := fixture(t)
	same, err := BuildProfile([]*ipv4.Packet{mkPkt(t, apk, db, "login")}, db)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ExtractRules(same, same, policy.LevelMethod)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("identical profiles produced rules: %v", rules)
	}
}
