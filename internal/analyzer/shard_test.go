package analyzer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"borderpatrol/internal/dex"
)

// entryWithPrefix builds an AppEntry whose truncated hash starts with the
// given byte, so tests can steer entries into a chosen shard.
func entryWithPrefix(prefix byte, i int) AppEntry {
	return AppEntry{
		Hash:        fmt.Sprintf("%02x%014x%016x", prefix, uint64(i), uint64(i)),
		PackageName: fmt.Sprintf("com.shard.app%02x.%d", prefix, i),
		VersionCode: 1,
		Signatures:  []string{"Lcom/shard/A;->m()V"},
	}
}

// TestShardSpread checks that entries distribute across stripes by their
// truncated-hash prefix: one entry per possible first byte must leave no
// shard holding more than its 256/shardCount share.
func TestShardSpread(t *testing.T) {
	db := NewDatabase()
	for p := 0; p < 256; p++ {
		if err := db.AddEntry(entryWithPrefix(byte(p), p)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 256 {
		t.Fatalf("Len = %d, want 256", db.Len())
	}
	want := 256 / shardCount
	for i := range db.shards {
		s := &db.shards[i]
		if len(s.byFull) != want || len(s.byTruncated) != want {
			t.Fatalf("shard %d holds %d/%d entries, want %d each", i, len(s.byFull), len(s.byTruncated), want)
		}
	}
}

// TestShardedCollisionStillDetected verifies the §VII hash-collision guard
// survives sharding: two different full hashes with the same truncated
// prefix land in the same shard and the second insert fails.
func TestShardedCollisionStillDetected(t *testing.T) {
	db := NewDatabase()
	a := entryWithPrefix(0x11, 1)
	b := entryWithPrefix(0x11, 1)
	b.Hash = a.Hash[:2*dex.TruncatedHashSize] + "ffffffffffffffff"
	b.PackageName = "com.shard.collider"
	if err := db.AddEntry(a); err != nil {
		t.Fatal(err)
	}
	if err := db.AddEntry(b); err == nil {
		t.Fatal("truncated-hash collision accepted")
	}
	// The duplicate check also stays intact.
	if err := db.AddEntry(a); err == nil {
		t.Fatal("duplicate entry accepted")
	}
}

// TestConcurrentProvisioningAndResolve is the tentpole's correctness side:
// writers provision apps into every shard while readers resolve, decode and
// list concurrently (run under -race in CI). Every provisioned app must be
// resolvable afterwards and the generation must count every insert.
func TestConcurrentProvisioningAndResolve(t *testing.T) {
	db := NewDatabase()
	seedEntry := entryWithPrefix(0xaa, 99999)
	if err := db.AddEntry(seedEntry); err != nil {
		t.Fatal(err)
	}
	seed, err := dex.ParseTruncatedHash(seedEntry.Hash[:2*dex.TruncatedHashSize])
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter, readers = 4, 64, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := db.AddEntry(entryWithPrefix(byte(w*perWriter+i), w*1000+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				res, ok := db.Resolve(seed)
				if !ok {
					t.Error("seed app unresolvable during provisioning")
					return
				}
				if _, err := res.Signature(0); err != nil {
					t.Error(err)
					return
				}
				db.Len()
				if i%100 == 0 {
					db.Hashes()
				}
			}
		}()
	}
	wg.Wait()

	if got, want := db.Len(), 1+writers*perWriter; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := db.Generation(); got != uint64(1+writers*perWriter) {
		t.Fatalf("Generation = %d, want %d", got, 1+writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			ae := entryWithPrefix(byte(w*perWriter+i), w*1000+i)
			tr, err := dex.ParseTruncatedHash(ae.Hash[:2*dex.TruncatedHashSize])
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := db.LookupTruncated(tr); !ok {
				t.Fatalf("provisioned app %s unresolvable", ae.Hash)
			}
		}
	}
}

// TestShardedSaveLoadDeterministic locks in the serialization contract
// across the sharded layout: Save output is sorted by hash and byte-stable,
// and Load rebuilds an equivalent database.
func TestShardedSaveLoadDeterministic(t *testing.T) {
	db := NewDatabase()
	for p := 0; p < 32; p++ {
		if err := db.AddEntry(entryWithPrefix(byte(p*8), p)); err != nil {
			t.Fatal(err)
		}
	}
	var a, b bytes.Buffer
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save output not deterministic across calls")
	}
	loaded, err := Load(&a)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded Len = %d, want %d", loaded.Len(), db.Len())
	}
	lh, dh := loaded.Hashes(), db.Hashes()
	for i := range dh {
		if lh[i] != dh[i] {
			t.Fatalf("hash %d: %s != %s", i, lh[i], dh[i])
		}
	}
}
