package analyzer

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"borderpatrol/internal/dex"
)

func buildAPK(pkg string, version int) *dex.APK {
	return &dex.APK{
		PackageName: pkg,
		Label:       pkg,
		Category:    "BUSINESS",
		VersionCode: version,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{
				{
					Package: "com/example/app",
					Name:    "Main",
					Methods: []dex.MethodDef{
						{Name: "onCreate", Proto: "(Landroid/os/Bundle;)V", File: "Main.java", StartLine: 10, EndLine: 40},
						{Name: "sync", Proto: "()V", File: "Main.java", StartLine: 50, EndLine: 70},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []dex.MethodDef{
						{Name: "beacon", Proto: "()V", File: "Agent.java", StartLine: 5, EndLine: 20},
					},
				},
			},
		}},
	}
}

func TestAnalyzeAPKDeterministicIndexes(t *testing.T) {
	a := buildAPK("com.example.app", 1)
	e1, err := AnalyzeAPK(a)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := AnalyzeAPK(buildAPK("com.example.app", 1))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Hash != e2.Hash {
		t.Fatal("hash not deterministic")
	}
	if len(e1.Signatures) != 3 {
		t.Fatalf("got %d signatures, want 3", len(e1.Signatures))
	}
	for i := range e1.Signatures {
		if e1.Signatures[i] != e2.Signatures[i] {
			t.Fatalf("index %d differs: %s vs %s", i, e1.Signatures[i], e2.Signatures[i])
		}
	}
}

func TestDatabaseEncodeDecodeBijective(t *testing.T) {
	db := NewDatabase()
	apk := buildAPK("com.example.app", 1)
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	tr := apk.Truncated()
	for i, raw := range mustEntry(t, db, tr).Signatures {
		sig, err := dex.ParseSignature(raw)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := db.Encode(tr, sig)
		if err != nil {
			t.Fatalf("Encode(%s): %v", sig, err)
		}
		if int(idx) != i {
			t.Fatalf("Encode(%s) = %d, want %d", sig, idx, i)
		}
		back, err := db.Decode(tr, idx)
		if err != nil {
			t.Fatal(err)
		}
		if back != sig {
			t.Fatalf("Decode(Encode(%s)) = %s", sig, back)
		}
	}
}

func mustEntry(t *testing.T, db *Database, tr dex.TruncatedHash) AppEntry {
	t.Helper()
	e, ok := db.LookupTruncated(tr)
	if !ok {
		t.Fatal("entry missing")
	}
	return e
}

func TestDatabaseErrors(t *testing.T) {
	db := NewDatabase()
	apk := buildAPK("com.example.app", 1)
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(buildAPK("com.example.app", 1)); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("duplicate: %v", err)
	}
	var unknown dex.TruncatedHash
	if _, err := db.Decode(unknown, 0); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app: %v", err)
	}
	if _, err := db.Decode(apk.Truncated(), 999); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("bad index: %v", err)
	}
	if _, err := db.Encode(apk.Truncated(), dex.Signature{Class: "Nope", Name: "x", Proto: "()V"}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	if _, err := db.DecodeStack(apk.Truncated(), []uint32{0, 999}); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("stack with bad index: %v", err)
	}
}

func TestDatabaseDifferentVersionsCoexist(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(buildAPK("com.example.app", 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(buildAPK("com.example.app", 2)); err != nil {
		t.Fatalf("second version rejected: %v", err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDatabase()
	for i := 1; i <= 5; i++ {
		if err := db.Add(buildAPK("com.example.app", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d apps, want %d", loaded.Len(), db.Len())
	}
	for _, h := range db.Hashes() {
		found := false
		for _, lh := range loaded.Hashes() {
			if lh == h {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("hash %s lost in round trip", h)
		}
	}
	// Decoding still works after reload.
	apk := buildAPK("com.example.app", 1)
	sig, err := loaded.Decode(apk.Truncated(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Package == "" {
		t.Fatal("decoded empty signature")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":9,"apps":[]}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1,"apps":[{"hash":"zz","signatures":[]}]}`)); err == nil {
		t.Error("bad hash accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1,"apps":[{"hash":"da6880ab1f9919747d39e2bd895b95a5","signatures":["garbage"]}]}`)); err == nil {
		t.Error("bad signature accepted")
	}
}

func TestIndexDeterminismProperty(t *testing.T) {
	// Property: for a randomly generated apk, analyzing twice produces the
	// identical index mapping, and every index round-trips.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		apk := randomAPK(r)
		e1, err := AnalyzeAPK(apk)
		if err != nil {
			return false
		}
		e2, err := AnalyzeAPK(apk)
		if err != nil {
			return false
		}
		if e1.Hash != e2.Hash || len(e1.Signatures) != len(e2.Signatures) {
			return false
		}
		for i := range e1.Signatures {
			if e1.Signatures[i] != e2.Signatures[i] {
				return false
			}
		}
		// Signatures must be unique (bijective index mapping).
		seen := make(map[string]bool, len(e1.Signatures))
		for _, s := range e1.Signatures {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomAPK(r *rand.Rand) *dex.APK {
	nClasses := 1 + r.Intn(6)
	classes := make([]dex.ClassDef, nClasses)
	for i := range classes {
		nMethods := 1 + r.Intn(8)
		methods := make([]dex.MethodDef, nMethods)
		line := 1
		for j := range methods {
			methods[j] = dex.MethodDef{
				Name:      "m" + string(rune('a'+j)),
				Proto:     "()V",
				File:      "F.java",
				StartLine: line,
				EndLine:   line + 5,
			}
			line += 10
		}
		classes[i] = dex.ClassDef{
			Package: "com/gen/p" + string(rune('a'+i)),
			Name:    "C" + string(rune('A'+i)),
			Methods: methods,
		}
	}
	return &dex.APK{
		PackageName: "com.gen.app",
		VersionCode: r.Intn(100),
		Dexes:       []*dex.File{{Classes: classes}},
	}
}

// TestTruncatedHashCollisionBound verifies the paper's §VII claim: with
// 3.3M apps and 8-byte (64-bit) truncated hashes, the collision
// probability is below 1e-6. Birthday bound: p ≈ n(n-1)/2 / 2^64.
func TestTruncatedHashCollisionBound(t *testing.T) {
	const n = 3_300_000.0
	p := n * (n - 1) / 2 / float64(1<<63) / 2
	if p >= 1e-6 {
		t.Fatalf("collision probability %.3g not below 1e-6", p)
	}
	// And empirically: a million random 64-bit values should not collide in
	// a deterministic pseudorandom draw (overwhelming probability).
	r := rand.New(rand.NewSource(7))
	seen := make(map[uint64]bool, 1<<20)
	for i := 0; i < 1<<20; i++ {
		v := r.Uint64()
		if seen[v] {
			t.Fatal("unexpected collision in 2^20 draws")
		}
		seen[v] = true
	}
}
