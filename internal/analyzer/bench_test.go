package analyzer

import (
	"fmt"
	"testing"

	"borderpatrol/internal/dex"
)

// buildBenchAPK creates an apk with roughly n method signatures.
func buildBenchAPK(n int) *dex.APK {
	perClass := 32
	classes := make([]dex.ClassDef, 0, n/perClass+1)
	made := 0
	for made < n {
		methods := make([]dex.MethodDef, 0, perClass)
		for j := 0; j < perClass && made < n; j++ {
			methods = append(methods, dex.MethodDef{
				Name: fmt.Sprintf("m%04d", j), Proto: "()V",
				File: "C.java", StartLine: j * 4, EndLine: j*4 + 3,
			})
			made++
		}
		classes = append(classes, dex.ClassDef{
			Package: fmt.Sprintf("com/bench/p%03d", len(classes)),
			Name:    fmt.Sprintf("C%03d", len(classes)),
			Methods: methods,
		})
	}
	return &dex.APK{
		PackageName: fmt.Sprintf("com.bench.app%d", n),
		VersionCode: 1,
		Dexes:       []*dex.File{{Classes: classes}},
	}
}

// Provisioning-time cost: analyzing one apk into the database.
func benchmarkAnalyze(b *testing.B, methods int) {
	b.Helper()
	apk := buildBenchAPK(methods)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apk.Invalidate()
		if _, err := AnalyzeAPK(apk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeAPK1kMethods(b *testing.B)  { benchmarkAnalyze(b, 1000) }
func BenchmarkAnalyzeAPK10kMethods(b *testing.B) { benchmarkAnalyze(b, 10000) }

// Enforcement-path cost: per-packet stack decoding against the database.
func BenchmarkDecodeStack(b *testing.B) {
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	indexes := []uint32{12, 871, 2400, 4999}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.DecodeStack(tr, indexes); err != nil {
			b.Fatal(err)
		}
	}
}

// Enforcement-path cost with the resolver handle: one lookup per packet,
// lock-free per-frame decoding into a reused buffer (0 allocs steady
// state).
func BenchmarkResolverDecodeStackInto(b *testing.B) {
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	indexes := []uint32{12, 871, 2400, 4999}
	buf := make([]dex.Signature, 0, len(indexes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := db.Resolve(tr)
		if !ok {
			b.Fatal("resolve failed")
		}
		var err error
		buf, err = r.DecodeStackInto(buf, indexes)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Context-Manager-path cost: signature → index lookup.
func BenchmarkEncodeLookup(b *testing.B) {
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	sig := apk.Signatures()[2400]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Encode(tr, sig); err != nil {
			b.Fatal(err)
		}
	}
}
