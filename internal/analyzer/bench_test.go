package analyzer

import (
	"fmt"
	"testing"
	"time"

	"borderpatrol/internal/dex"
)

// buildBenchAPK creates an apk with roughly n method signatures.
func buildBenchAPK(n int) *dex.APK {
	perClass := 32
	classes := make([]dex.ClassDef, 0, n/perClass+1)
	made := 0
	for made < n {
		methods := make([]dex.MethodDef, 0, perClass)
		for j := 0; j < perClass && made < n; j++ {
			methods = append(methods, dex.MethodDef{
				Name: fmt.Sprintf("m%04d", j), Proto: "()V",
				File: "C.java", StartLine: j * 4, EndLine: j*4 + 3,
			})
			made++
		}
		classes = append(classes, dex.ClassDef{
			Package: fmt.Sprintf("com/bench/p%03d", len(classes)),
			Name:    fmt.Sprintf("C%03d", len(classes)),
			Methods: methods,
		})
	}
	return &dex.APK{
		PackageName: fmt.Sprintf("com.bench.app%d", n),
		VersionCode: 1,
		Dexes:       []*dex.File{{Classes: classes}},
	}
}

// Provisioning-time cost: analyzing one apk into the database.
func benchmarkAnalyze(b *testing.B, methods int) {
	b.Helper()
	apk := buildBenchAPK(methods)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apk.Invalidate()
		if _, err := AnalyzeAPK(apk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeAPK1kMethods(b *testing.B)  { benchmarkAnalyze(b, 1000) }
func BenchmarkAnalyzeAPK10kMethods(b *testing.B) { benchmarkAnalyze(b, 10000) }

// Enforcement-path cost: per-packet stack decoding against the database.
func BenchmarkDecodeStack(b *testing.B) {
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	indexes := []uint32{12, 871, 2400, 4999}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.DecodeStack(tr, indexes); err != nil {
			b.Fatal(err)
		}
	}
}

// Enforcement-path cost with the resolver handle: one lookup per packet,
// lock-free per-frame decoding into a reused buffer (0 allocs steady
// state).
func BenchmarkResolverDecodeStackInto(b *testing.B) {
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	indexes := []uint32{12, 871, 2400, 4999}
	buf := make([]dex.Signature, 0, len(indexes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := db.Resolve(tr)
		if !ok {
			b.Fatal("resolve failed")
		}
		var err error
		buf, err = r.DecodeStackInto(buf, indexes)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticEntry builds a small unique AppEntry for provisioning-churn
// benchmarks: the hash is derived from i, so every call inserts a fresh
// app without analyzing an apk.
func syntheticEntry(i int) AppEntry {
	return AppEntry{
		Hash:        fmt.Sprintf("%016x%016x", 0xfeed00000000+uint64(i), uint64(i)),
		PackageName: fmt.Sprintf("com.churn.app%d", i),
		VersionCode: 1,
		Signatures:  []string{"Lcom/churn/A;->m()V"},
	}
}

// BenchmarkResolveParallel is the fleet-scale read path with no
// management-plane churn: every goroutine resolves the same hot app.
func BenchmarkResolveParallel(b *testing.B) {
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := db.Resolve(tr); !ok {
				b.Error("resolve failed")
				return
			}
		}
	})
}

// benchmarkResolveUnderWriter drives parallel resolves while one goroutine
// provisions fresh apps; pace throttles the writer (0 = continuous). The
// continuous writer is the hostile worst case — on a single-core runner it
// also time-shares the CPU with the readers, so the paced variant is the
// one that isolates lock contention (see PERFORMANCE.md).
func benchmarkResolveUnderWriter(b *testing.B, pace time.Duration) {
	b.Helper()
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.AddEntry(syntheticEntry(i)); err != nil {
				b.Error(err)
				return
			}
			if pace > 0 {
				time.Sleep(pace)
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := db.Resolve(tr); !ok {
				b.Error("resolve failed")
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkResolveParallelWithWriter is the tentpole acceptance benchmark:
// resolve cost with a provisioning writer churning at a heavy-but-realistic
// fleet rate (~10k apps/s) must stay within noise of
// BenchmarkResolveParallel — the writer contends only within the one shard
// each insert lands on.
func BenchmarkResolveParallelWithWriter(b *testing.B) {
	benchmarkResolveUnderWriter(b, 100*time.Microsecond)
}

// BenchmarkResolveParallelWithHotWriter removes the pacing: the writer
// provisions as fast as one core can. This measures the absolute floor
// under management-plane saturation (CPU sharing included).
func BenchmarkResolveParallelWithHotWriter(b *testing.B) {
	benchmarkResolveUnderWriter(b, 0)
}

// Context-Manager-path cost: signature → index lookup.
func BenchmarkEncodeLookup(b *testing.B) {
	apk := buildBenchAPK(5000)
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	tr := apk.Truncated()
	sig := apk.Signatures()[2400]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Encode(tr, sig); err != nil {
			b.Fatal(err)
		}
	}
}
