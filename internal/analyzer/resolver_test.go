package analyzer

import (
	"errors"
	"testing"

	"borderpatrol/internal/dex"
)

func resolverTestAPK() *dex.APK {
	return &dex.APK{
		PackageName: "com.corp.files",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{{
				Package: "com/corp/files",
				Name:    "SyncEngine",
				Methods: []dex.MethodDef{
					{Name: "download", Proto: "()V", File: "S.java", StartLine: 10, EndLine: 20},
					{Name: "upload", Proto: "()V", File: "S.java", StartLine: 30, EndLine: 40},
				},
			}},
		}},
	}
}

func TestResolverDecodeAndEncodeAgree(t *testing.T) {
	apk := resolverTestAPK()
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	r, ok := db.Resolve(apk.Truncated())
	if !ok {
		t.Fatal("known app did not resolve")
	}
	if r.App().PackageName != "com.corp.files" {
		t.Fatalf("meta = %+v", r.App())
	}
	for i := 0; i < r.Len(); i++ {
		sig, err := r.Signature(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		idx, err := r.Index(sig)
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint32(i) {
			t.Fatalf("Index(Signature(%d)) = %d", i, idx)
		}
		raw, err := r.SignatureString(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if raw != sig.String() {
			t.Fatalf("cached string %q != %q", raw, sig.String())
		}
	}
	if _, err := r.Signature(999); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("out-of-range index error = %v", err)
	}
	if _, err := r.SignatureString(999); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("out-of-range string error = %v", err)
	}
	if _, err := r.Index(dex.Signature{Class: "Nope", Name: "x", Proto: "()V"}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method error = %v", err)
	}
}

func TestResolveUnknownApp(t *testing.T) {
	db := NewDatabase()
	var h dex.TruncatedHash
	h[0] = 0xee
	if _, ok := db.Resolve(h); ok {
		t.Fatal("unknown hash resolved")
	}
}

func TestDecodeStackIntoReusesBuffer(t *testing.T) {
	apk := resolverTestAPK()
	db := NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	r, ok := db.Resolve(apk.Truncated())
	if !ok {
		t.Fatal("resolve failed")
	}
	buf := make([]dex.Signature, 0, 8)
	out, err := r.DecodeStackInto(buf, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || cap(out) != cap(buf) || &out[0] != &buf[:1][0] {
		t.Fatalf("buffer not reused: len=%d cap=%d", len(out), cap(out))
	}
	// Steady state: decoding through a retained buffer must not allocate.
	indexes := []uint32{1, 0, 1}
	if avg := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = r.DecodeStackInto(buf, indexes)
		if err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeStackInto allocates %.1f per op", avg)
	}
	if _, err := r.DecodeStackInto(buf, []uint32{5}); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("bad index error = %v", err)
	}
}
