// Package analyzer implements BorderPatrol's Offline Analyzer (paper
// §IV-A1, §V-A): it processes every app the enterprise manages, extracts
// method signatures from the app's dex files, orders them
// deterministically, assigns sequential indexes, and stores the mapping in
// a JSON database keyed by the apk's MD5 hash. The Context Manager (on
// device) and the Policy Enforcer (on network) both derive their mappings
// from the same apk bytes, so encode and decode stay in coherence without
// any runtime coordination.
package analyzer

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"borderpatrol/internal/dex"
)

// AppEntry is one app's record in the signature database.
type AppEntry struct {
	// Hash is the full MD5 of the apk, in hex (the primary key).
	Hash string `json:"hash"`
	// PackageName is the Android application id, for operator readability.
	PackageName string `json:"package_name"`
	// VersionCode distinguishes entries for different versions of an app.
	VersionCode int `json:"version_code"`
	// MultiDex records whether indexes need the wide (3-byte) encoding.
	MultiDex bool `json:"multi_dex"`
	// DebugStripped records whether the apk lacked debug line tables.
	DebugStripped bool `json:"debug_stripped"`
	// Signatures is the ordered signature list; a method's index is its
	// position in this slice.
	Signatures []string `json:"signatures"`
}

// shardCount is the number of lock stripes in a Database, a power of two
// selected by the first byte of an app's truncated hash (MD5 bytes are
// uniform, so apps spread evenly). At fleet scale a provisioning write
// contends only with resolves that land on the same 1/64th of the hash
// space; the per-packet resolve path never touches a lock another shard's
// writer holds.
const shardCount = 64

// dbShard is one lock stripe of the database. Both maps for a given app
// live in the same shard — the byFull key (full hex hash) starts with the
// hex form of the truncated hash that selects the shard — so duplicate and
// collision checks need only the shard lock.
type dbShard struct {
	mu sync.RWMutex
	// byFull maps full 32-hex MD5 to entry.
	byFull map[string]*entry
	// byTruncated maps the 8-byte packet identifier to the full hash.
	// Collisions (paper §VII "Hash collision") are detected at insert.
	byTruncated map[dex.TruncatedHash]string
	// pad keeps neighbouring shard locks off one cache line.
	_ [40]byte
}

// Database maps truncated and full apk hashes to signature tables. It is
// safe for concurrent use; the Policy Enforcer reads it on every packet
// while new apps are provisioned, so the table is sharded by truncated-hash
// prefix: resolves RLock one shard, provisioning writes lock one shard.
type Database struct {
	// generation counts successful mutations; flow-verdict caches key
	// their entries on it so provisioning a new app invalidates any
	// verdict that depended on the app being unknown.
	generation atomic.Uint64
	shards     [shardCount]dbShard
}

// entry is immutable once inserted: the Resolver hands out lock-free
// references to it, so nothing may mutate sigs or index after AddEntry.
type entry struct {
	meta AppEntry
	sigs []dex.Signature
	// index maps parsed signatures to their index for reverse lookups
	// without re-stringifying the probe signature.
	index map[dex.Signature]uint32
}

// Errors returned by database operations.
var (
	ErrUnknownApp     = errors.New("analyzer: unknown app hash")
	ErrUnknownIndex   = errors.New("analyzer: method index out of range")
	ErrHashCollision  = errors.New("analyzer: truncated hash collision")
	ErrUnknownMethod  = errors.New("analyzer: method signature not in app")
	ErrDuplicateEntry = errors.New("analyzer: app already in database")
)

// NewDatabase returns an empty signature database.
func NewDatabase() *Database {
	db := &Database{}
	for i := range db.shards {
		db.shards[i].byFull = make(map[string]*entry)
		db.shards[i].byTruncated = make(map[dex.TruncatedHash]string)
	}
	return db
}

// shardFor selects the lock stripe owning a truncated hash.
func (db *Database) shardFor(t dex.TruncatedHash) *dbShard {
	return &db.shards[t[0]&(shardCount-1)]
}

// AnalyzeAPK extracts the deterministic signature table for one apk,
// exactly as the Java/dexlib2 Offline Analyzer does: validate the package,
// pull method signatures per dex in canonical order, concatenate across dex
// files.
func AnalyzeAPK(apk *dex.APK) (AppEntry, error) {
	if err := apk.Validate(); err != nil {
		return AppEntry{}, fmt.Errorf("analyzer: %w", err)
	}
	sigs := apk.Signatures()
	out := AppEntry{
		Hash:          apk.HashHex(),
		PackageName:   apk.PackageName,
		VersionCode:   apk.VersionCode,
		MultiDex:      apk.MultiDex(),
		DebugStripped: apk.DebugStripped(),
		Signatures:    make([]string, len(sigs)),
	}
	for i, s := range sigs {
		out.Signatures[i] = s.String()
	}
	return out, nil
}

// Add analyzes an apk and inserts its entry. Adding the same apk twice is
// an error; adding a different apk whose truncated hash collides with an
// existing entry returns ErrHashCollision (the probability is < 1e-6 at
// Play-store scale, but the enforcer must not mis-attribute packets).
func (db *Database) Add(apk *dex.APK) error {
	ae, err := AnalyzeAPK(apk)
	if err != nil {
		return err
	}
	return db.AddEntry(ae)
}

// AddEntry inserts a pre-built entry (used when loading a JSON database).
func (db *Database) AddEntry(ae AppEntry) error {
	e := &entry{
		meta:  ae,
		sigs:  make([]dex.Signature, len(ae.Signatures)),
		index: make(map[dex.Signature]uint32, len(ae.Signatures)),
	}
	for i, raw := range ae.Signatures {
		sig, err := dex.ParseSignature(raw)
		if err != nil {
			return fmt.Errorf("analyzer: entry %s signature %d: %w", ae.Hash, i, err)
		}
		e.sigs[i] = sig
		e.index[sig] = uint32(i)
	}
	if len(ae.Hash) != 2*dex.HashSize {
		return fmt.Errorf("analyzer: entry hash %q has %d hex digits, want %d", ae.Hash, len(ae.Hash), 2*dex.HashSize)
	}
	trunc, err := dex.ParseTruncatedHash(ae.Hash[:2*dex.TruncatedHashSize])
	if err != nil {
		return fmt.Errorf("analyzer: entry hash %q: %w", ae.Hash, err)
	}

	s := db.shardFor(trunc)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byFull[ae.Hash]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateEntry, ae.Hash)
	}
	if existing, clash := s.byTruncated[trunc]; clash && existing != ae.Hash {
		return fmt.Errorf("%w: %s vs %s", ErrHashCollision, existing, ae.Hash)
	}
	s.byFull[ae.Hash] = e
	s.byTruncated[trunc] = ae.Hash
	// Bump the generation only after the entry is resolvable, so a reader
	// observing the new generation re-evaluates against the new entry.
	db.generation.Add(1)
	return nil
}

// Generation returns the number of successful mutations so far. Verdict
// caches store it with each entry and treat any change as invalidation.
func (db *Database) Generation() uint64 { return db.generation.Load() }

// Len returns the number of apps in the database.
func (db *Database) Len() int {
	n := 0
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		n += len(s.byFull)
		s.mu.RUnlock()
	}
	return n
}

// LookupTruncated resolves a packet's 8-byte app identifier to the app's
// database entry.
func (db *Database) LookupTruncated(t dex.TruncatedHash) (AppEntry, bool) {
	s := db.shardFor(t)
	s.mu.RLock()
	defer s.mu.RUnlock()
	full, ok := s.byTruncated[t]
	if !ok {
		return AppEntry{}, false
	}
	return s.byFull[full].meta, true
}

// Resolver is a read-only handle to one app's signature table, resolved
// from its truncated hash exactly once. Entries are immutable after
// insertion, so every Resolver method runs lock-free: the per-packet hot
// path pays one RLock in Resolve and then decodes an arbitrary number of
// frames without touching the database again.
type Resolver struct {
	hash dex.TruncatedHash
	e    *entry
}

// Resolve looks up the app behind a packet's truncated hash and returns a
// lock-free handle to its signature table. The single RLock it takes is on
// the hash's shard, so resolves proceed in parallel with provisioning
// writes to the other shards.
func (db *Database) Resolve(t dex.TruncatedHash) (Resolver, bool) {
	s := db.shardFor(t)
	s.mu.RLock()
	full, ok := s.byTruncated[t]
	var e *entry
	if ok {
		e = s.byFull[full]
	}
	s.mu.RUnlock()
	return Resolver{hash: t, e: e}, ok
}

// App returns the app's database record.
func (r Resolver) App() AppEntry { return r.e.meta }

// Len returns the number of methods in the app's signature table.
func (r Resolver) Len() int { return len(r.e.sigs) }

// Signature maps one method index back to its parsed signature.
func (r Resolver) Signature(index uint32) (dex.Signature, error) {
	if int(index) >= len(r.e.sigs) {
		return dex.Signature{}, fmt.Errorf("%w: %d >= %d for app %s", ErrUnknownIndex, index, len(r.e.sigs), r.hash)
	}
	return r.e.sigs[index], nil
}

// SignatureString returns the cached canonical string for one method
// index, so consumers that need the smali form (the Policy Extractor's
// profile builder, tooling) never re-stringify decoded signatures.
func (r Resolver) SignatureString(index uint32) (string, error) {
	if int(index) >= len(r.e.meta.Signatures) {
		return "", fmt.Errorf("%w: %d >= %d for app %s", ErrUnknownIndex, index, len(r.e.meta.Signatures), r.hash)
	}
	return r.e.meta.Signatures[index], nil
}

// Index maps a parsed signature to its method index.
func (r Resolver) Index(sig dex.Signature) (uint32, error) {
	idx, ok := r.e.index[sig]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownMethod, sig)
	}
	return idx, nil
}

// DecodeStackInto decodes an index sequence into dst (reusing its backing
// array when capacity allows), preserving order. Steady-state per-packet
// decoding through a retained buffer is allocation-free.
func (r Resolver) DecodeStackInto(dst []dex.Signature, indexes []uint32) ([]dex.Signature, error) {
	dst = dst[:0]
	for _, idx := range indexes {
		sig, err := r.Signature(idx)
		if err != nil {
			return nil, err
		}
		dst = append(dst, sig)
	}
	return dst, nil
}

// Decode maps one method index of an app (identified by truncated hash)
// back to its signature — the enforcer's per-frame decoding step.
func (db *Database) Decode(t dex.TruncatedHash, index uint32) (dex.Signature, error) {
	r, ok := db.Resolve(t)
	if !ok {
		return dex.Signature{}, fmt.Errorf("%w: %s", ErrUnknownApp, t)
	}
	return r.Signature(index)
}

// DecodeStack decodes a full index sequence into the stack trace of method
// signatures, preserving order (paper §IV-A3 decoding stage). The app is
// resolved once and the whole stack decodes under that single lookup.
func (db *Database) DecodeStack(t dex.TruncatedHash, indexes []uint32) ([]dex.Signature, error) {
	r, ok := db.Resolve(t)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownApp, t)
	}
	return r.DecodeStackInto(make([]dex.Signature, 0, len(indexes)), indexes)
}

// Encode maps a signature to its index for an app — the Context Manager's
// encoding step uses the identical table, so Encode(Decode(i)) == i.
func (db *Database) Encode(t dex.TruncatedHash, sig dex.Signature) (uint32, error) {
	r, ok := db.Resolve(t)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownApp, t)
	}
	return r.Index(sig)
}

// Hashes returns the full hashes of all apps, sorted, for deterministic
// serialization.
func (db *Database) Hashes() []string {
	var out []string
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for h := range s.byFull {
			out = append(out, h)
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// jsonDB is the serialized database document: the paper ships the mapping
// as JSON "for its ease of use and portability" (§V-A).
type jsonDB struct {
	Version int        `json:"version"`
	Apps    []AppEntry `json:"apps"`
}

// Save writes the database as JSON. Entries added concurrently with Save
// may or may not appear; each shard is snapshotted consistently.
func (db *Database) Save(w io.Writer) error {
	doc := jsonDB{Version: 1}
	doc.Apps = make([]AppEntry, 0, db.Len())
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for _, e := range s.byFull {
			doc.Apps = append(doc.Apps, e.meta)
		}
		s.mu.RUnlock()
	}
	sort.Slice(doc.Apps, func(i, j int) bool { return doc.Apps[i].Hash < doc.Apps[j].Hash })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("analyzer: save: %w", err)
	}
	return nil
}

// Load reads a JSON database document.
func Load(r io.Reader) (*Database, error) {
	var doc jsonDB
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("analyzer: load: %w", err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("analyzer: unsupported database version %d", doc.Version)
	}
	db := NewDatabase()
	for _, ae := range doc.Apps {
		if err := db.AddEntry(ae); err != nil {
			return nil, err
		}
	}
	return db, nil
}
