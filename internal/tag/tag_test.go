package tag

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"borderpatrol/internal/dex"
)

func testHash() dex.TruncatedHash {
	var h dex.TruncatedHash
	for i := range h {
		h[i] = byte(0xa0 + i)
	}
	return h
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := Tag{
		AppHash: testHash(),
		Indexes: []uint32{0, 1, 512, MaxNarrowIndex},
	}
	buf, err := orig.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(buf) != HeaderSize+4*2 {
		t.Fatalf("narrow encoding size = %d, want %d", len(buf), HeaderSize+8)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.AppHash != orig.AppHash {
		t.Error("app hash mismatch")
	}
	if len(got.Indexes) != len(orig.Indexes) {
		t.Fatalf("index count %d, want %d", len(got.Indexes), len(orig.Indexes))
	}
	for i := range got.Indexes {
		if got.Indexes[i] != orig.Indexes[i] {
			t.Errorf("index %d = %d, want %d", i, got.Indexes[i], orig.Indexes[i])
		}
	}
}

func TestEncodeWideIndexes(t *testing.T) {
	orig := Tag{AppHash: testHash(), Indexes: []uint32{70000, 1, MaxWideIndex}}
	buf, err := orig.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(buf) != HeaderSize+3*3 {
		t.Fatalf("wide encoding size = %d, want %d", len(buf), HeaderSize+9)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i := range orig.Indexes {
		if got.Indexes[i] != orig.Indexes[i] {
			t.Errorf("index %d = %d, want %d", i, got.Indexes[i], orig.Indexes[i])
		}
	}
}

func TestEncodeBudget(t *testing.T) {
	// The encoded tag must always fit the IP_OPTIONS budget.
	long := make([]uint32, 50)
	for i := range long {
		long[i] = uint32(i)
	}
	tg := Tag{AppHash: testHash(), Indexes: long}
	buf, err := tg.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(buf) > MaxEncoded {
		t.Fatalf("encoded %d bytes exceeds budget %d", len(buf), MaxEncoded)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Truncated {
		t.Error("truncation flag not set")
	}
	if len(got.Indexes) != MaxNarrowFrames {
		t.Fatalf("kept %d frames, want %d", len(got.Indexes), MaxNarrowFrames)
	}
	// Innermost frames (lowest positions) must be the ones kept.
	for i := 0; i < MaxNarrowFrames; i++ {
		if got.Indexes[i] != uint32(i) {
			t.Fatalf("frame %d = %d; innermost frames must survive truncation", i, got.Indexes[i])
		}
	}
}

func TestEncodeWideBudget(t *testing.T) {
	long := make([]uint32, 30)
	for i := range long {
		long[i] = uint32(70000 + i)
	}
	tg := Tag{AppHash: testHash(), Indexes: long}
	buf, err := tg.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(buf) > MaxEncoded {
		t.Fatalf("encoded %d bytes exceeds budget %d", len(buf), MaxEncoded)
	}
	got, _ := Decode(buf)
	if len(got.Indexes) != MaxWideFrames {
		t.Fatalf("kept %d wide frames, want %d", len(got.Indexes), MaxWideFrames)
	}
}

func TestEncodeIndexTooLarge(t *testing.T) {
	tg := Tag{AppHash: testHash(), Indexes: []uint32{MaxWideIndex + 1}}
	if _, err := tg.Encode(); !errors.Is(err, ErrIndexTooLarge) {
		t.Fatalf("err = %v, want ErrIndexTooLarge", err)
	}
}

func TestDecodeFlags(t *testing.T) {
	tg := Tag{AppHash: testHash(), Indexes: []uint32{3}, DebugStripped: true}
	buf, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.DebugStripped {
		t.Error("debug-stripped flag lost")
	}
	if got.Truncated {
		t.Error("spurious truncated flag")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncatedTag) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode(make([]byte, HeaderSize-1)); !errors.Is(err, ErrTruncatedTag) {
		t.Errorf("short header: %v", err)
	}
	bad := make([]byte, HeaderSize)
	bad[0] = 0x20 // version 2
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Dangling narrow index byte.
	tg := Tag{AppHash: testHash(), Indexes: []uint32{1}}
	buf, _ := tg.Encode()
	if _, err := Decode(buf[:len(buf)-1]); !errors.Is(err, ErrTruncatedTag) {
		t.Errorf("dangling narrow: %v", err)
	}
	// Dangling wide index bytes.
	tg = Tag{AppHash: testHash(), Indexes: []uint32{70000}}
	buf, _ = tg.Encode()
	if _, err := Decode(buf[:len(buf)-1]); !errors.Is(err, ErrTruncatedTag) {
		t.Errorf("dangling wide: %v", err)
	}
}

func TestTagString(t *testing.T) {
	tg := Tag{AppHash: testHash(), Indexes: []uint32{1, 2}}
	s := tg.String()
	if !strings.Contains(s, "frames=2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var h dex.TruncatedHash
		r.Read(h[:])
		n := r.Intn(MaxWideFrames + 1)
		idx := make([]uint32, n)
		wide := r.Intn(2) == 1
		for i := range idx {
			if wide {
				idx[i] = uint32(r.Intn(MaxWideIndex + 1))
			} else {
				idx[i] = uint32(r.Intn(MaxNarrowIndex + 1))
			}
		}
		orig := Tag{AppHash: h, Indexes: idx, DebugStripped: r.Intn(2) == 1}
		buf, err := orig.Encode()
		if err != nil || len(buf) > MaxEncoded {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		if got.AppHash != h || got.DebugStripped != orig.DebugStripped || len(got.Indexes) != n {
			return false
		}
		for i := range idx {
			if got.Indexes[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) // must not panic; errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Also fuzz around valid payload prefixes.
	tg := Tag{AppHash: testHash(), Indexes: []uint32{1, 70000, 5}}
	buf, _ := tg.Encode()
	for i := 0; i <= len(buf); i++ {
		_, _ = Decode(buf[:i])
	}
	if !bytes.Equal(buf[1:9], func() []byte { h := testHash(); return h[:] }()) {
		t.Fatal("hash bytes not where expected")
	}
}
