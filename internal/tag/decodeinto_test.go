package tag

import (
	"reflect"
	"testing"

	"borderpatrol/internal/dex"
)

// TestDecodeIntoReusesBuffer verifies the allocation-free per-packet
// decode: a retained Tag's index buffer is reused across payloads and
// stale state from the previous packet never leaks into the next.
func TestDecodeIntoReusesBuffer(t *testing.T) {
	var h dex.TruncatedHash
	for i := range h {
		h[i] = byte(i + 1)
	}
	first := Tag{AppHash: h, Indexes: []uint32{1, 70000, 3}, DebugStripped: true}
	firstBuf, err := first.Encode()
	if err != nil {
		t.Fatal(err)
	}
	second := Tag{Indexes: []uint32{9}}
	secondBuf, err := second.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var scratch Tag
	if err := DecodeInto(&scratch, firstBuf); err != nil {
		t.Fatal(err)
	}
	if scratch.AppHash != h || !scratch.DebugStripped ||
		!reflect.DeepEqual(scratch.Indexes, []uint32{1, 70000, 3}) {
		t.Fatalf("first decode = %+v", scratch)
	}
	keep := &scratch.Indexes[0]
	if err := DecodeInto(&scratch, secondBuf); err != nil {
		t.Fatal(err)
	}
	if scratch.DebugStripped || scratch.Truncated {
		t.Fatalf("stale flags leaked: %+v", scratch)
	}
	if scratch.AppHash != (dex.TruncatedHash{}) || !reflect.DeepEqual(scratch.Indexes, []uint32{9}) {
		t.Fatalf("second decode = %+v", scratch)
	}
	if keep != &scratch.Indexes[0] {
		t.Fatal("index buffer was reallocated despite sufficient capacity")
	}

	// Steady state through a retained scratch tag must not allocate.
	if avg := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(&scratch, firstBuf); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeInto allocates %.1f per op", avg)
	}
}

// TestDecodeIntoMatchesDecode cross-checks the two entry points.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	src := Tag{Indexes: []uint32{0, 32767, 32768, MaxWideIndex}, Truncated: true}
	buf, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Tag
	if err := DecodeInto(&got, buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("DecodeInto = %+v, Decode = %+v", got, want)
	}
}
