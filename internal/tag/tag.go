// Package tag implements BorderPatrol's compact context-tag encoding: the
// payload the Context Manager embeds in the IP_OPTIONS header field and the
// Policy Enforcer decodes back into a stack trace (paper §IV-A2, Fig. 2).
//
// Layout (inside one IP option of type 130/security):
//
//	byte 0      version (high nibble) | flags (low nibble)
//	bytes 1..8  truncated (8-byte) MD5 of the originating apk
//	bytes 9..   method indexes, innermost (socket call site) first
//
// Indexes use the paper's proposed variable-length extension (§VII
// "Multi-dex file applications"): if the first byte's high bit is clear the
// index occupies 2 bytes (15-bit value, single-dex apps); if set it
// occupies 3 bytes (23-bit value, multi-dex apps). The whole option must
// fit the 40-byte IP_OPTIONS budget, so at most 14 narrow (or 9 wide)
// frames are carried; deeper stacks are truncated outermost-first, keeping
// the frames closest to the socket call, which carry the app-specific
// context.
package tag

import (
	"errors"
	"fmt"

	"borderpatrol/internal/dex"
)

// Version is the current tag wire-format version.
const Version = 1

// Flag bits (low nibble of byte 0).
const (
	// FlagDebugStripped marks a tag whose indexes refer to merged
	// (over-approximated) signatures because the apk lacked debug info.
	FlagDebugStripped = 1 << 0
	// FlagTruncated marks a tag whose stack did not fit the options budget.
	FlagTruncated = 1 << 1
)

// Wire-size constants.
const (
	// HeaderSize is version/flags byte plus the truncated apk hash.
	HeaderSize = 1 + dex.TruncatedHashSize
	// MaxEncoded is the maximum tag payload: the 40-byte IP_OPTIONS budget
	// minus the option's own type and length bytes.
	MaxEncoded = 40 - 2
	// maxIndexBytes is the room left for indexes after the header.
	maxIndexBytes = MaxEncoded - HeaderSize // 29
	// MaxNarrowFrames is the frame capacity with 2-byte indexes.
	MaxNarrowFrames = maxIndexBytes / 2 // 14
	// MaxWideFrames is the frame capacity with 3-byte indexes.
	MaxWideFrames = maxIndexBytes / 3 // 9
	// MaxNarrowIndex is the largest index a 2-byte encoding can carry.
	MaxNarrowIndex = 1<<15 - 1
	// MaxWideIndex is the largest index a 3-byte encoding can carry.
	MaxWideIndex = 1<<23 - 1
)

// Errors returned by encoding and decoding.
var (
	ErrIndexTooLarge = errors.New("tag: method index exceeds 23-bit wide encoding")
	ErrTruncatedTag  = errors.New("tag: payload truncated")
	ErrBadVersion    = errors.New("tag: unsupported version")
)

// Tag is the decoded context tag: which app sent the packet and the stack
// of method indexes active when its socket was created.
type Tag struct {
	AppHash dex.TruncatedHash
	// Indexes are global method indexes, innermost frame first.
	Indexes []uint32
	// DebugStripped mirrors FlagDebugStripped.
	DebugStripped bool
	// Truncated mirrors FlagTruncated.
	Truncated bool
}

// Encode serializes the tag. Frames that do not fit the IP_OPTIONS budget
// are dropped outermost-first and the truncated flag is set. Encode never
// fails for in-range indexes; an index above MaxWideIndex is an error
// because no legal dex layout can produce it (23 bits cover 128 dex files).
func (t *Tag) Encode() ([]byte, error) {
	wide := false
	for _, idx := range t.Indexes {
		if idx > MaxWideIndex {
			return nil, fmt.Errorf("%w: index %d", ErrIndexTooLarge, idx)
		}
		if idx > MaxNarrowIndex {
			wide = true
		}
	}
	per := 2
	max := MaxNarrowFrames
	if wide {
		per = 3
		max = MaxWideFrames
	}
	indexes := t.Indexes
	truncated := t.Truncated
	if len(indexes) > max {
		indexes = indexes[:max]
		truncated = true
	}
	buf := make([]byte, HeaderSize, HeaderSize+len(indexes)*per)
	flags := byte(0)
	if t.DebugStripped {
		flags |= FlagDebugStripped
	}
	if truncated {
		flags |= FlagTruncated
	}
	buf[0] = Version<<4 | flags
	copy(buf[1:], t.AppHash[:])
	for _, idx := range indexes {
		if wide {
			buf = append(buf, 0x80|byte(idx>>16), byte(idx>>8), byte(idx))
		} else {
			buf = append(buf, byte(idx>>8), byte(idx))
		}
	}
	return buf, nil
}

// Decode parses a tag payload produced by Encode. It accepts mixed narrow
// and wide indexes (the high bit of each index's first byte selects the
// width), which keeps the decoder robust if an encoder chooses widths
// per-index.
func Decode(buf []byte) (Tag, error) {
	var t Tag
	err := DecodeInto(&t, buf)
	return t, err
}

// DecodeInto parses a tag payload into t, reusing t's Indexes backing
// array when its capacity suffices. The per-packet decode on the enforcer
// hot path feeds a retained Tag through here, making steady-state
// decoding allocation-free.
func DecodeInto(t *Tag, buf []byte) error {
	t.Indexes = t.Indexes[:0]
	t.DebugStripped = false
	t.Truncated = false
	if len(buf) < HeaderSize {
		return fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncatedTag, len(buf), HeaderSize)
	}
	if v := buf[0] >> 4; v != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	flags := buf[0] & 0x0f
	t.DebugStripped = flags&FlagDebugStripped != 0
	t.Truncated = flags&FlagTruncated != 0
	copy(t.AppHash[:], buf[1:HeaderSize])
	rest := buf[HeaderSize:]
	if t.Indexes == nil {
		t.Indexes = make([]uint32, 0, len(rest)/2)
	}
	for len(rest) > 0 {
		if rest[0]&0x80 != 0 {
			if len(rest) < 3 {
				return fmt.Errorf("%w: dangling wide index", ErrTruncatedTag)
			}
			t.Indexes = append(t.Indexes,
				uint32(rest[0]&0x7f)<<16|uint32(rest[1])<<8|uint32(rest[2]))
			rest = rest[3:]
		} else {
			if len(rest) < 2 {
				return fmt.Errorf("%w: dangling narrow index", ErrTruncatedTag)
			}
			t.Indexes = append(t.Indexes, uint32(rest[0])<<8|uint32(rest[1]))
			rest = rest[2:]
		}
	}
	return nil
}

// String summarizes the tag for logs and policy-extractor output.
func (t Tag) String() string {
	return fmt.Sprintf("tag{app=%s frames=%d stripped=%v truncated=%v}",
		t.AppHash, len(t.Indexes), t.DebugStripped, t.Truncated)
}
