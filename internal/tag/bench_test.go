package tag

import (
	"testing"

	"borderpatrol/internal/dex"
)

// Ablation: encode/decode cost vs stack depth. The per-socket tagging cost
// the paper amortizes (§VI-D) includes this encode; decode runs per packet
// on the enforcer.
func benchmarkEncodeDepth(b *testing.B, depth int, wide bool) {
	b.Helper()
	var h dex.TruncatedHash
	for i := range h {
		h[i] = byte(i)
	}
	idx := make([]uint32, depth)
	for i := range idx {
		if wide {
			idx[i] = uint32(70000 + i)
		} else {
			idx[i] = uint32(100 + i)
		}
	}
	t := Tag{AppHash: h, Indexes: idx}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDepth2Narrow(b *testing.B)  { benchmarkEncodeDepth(b, 2, false) }
func BenchmarkEncodeDepth8Narrow(b *testing.B)  { benchmarkEncodeDepth(b, 8, false) }
func BenchmarkEncodeDepth14Narrow(b *testing.B) { benchmarkEncodeDepth(b, 14, false) }
func BenchmarkEncodeDepth9Wide(b *testing.B)    { benchmarkEncodeDepth(b, 9, true) }

func benchmarkDecodeDepth(b *testing.B, depth int) {
	b.Helper()
	var h dex.TruncatedHash
	idx := make([]uint32, depth)
	for i := range idx {
		idx[i] = uint32(i * 7)
	}
	t := Tag{AppHash: h, Indexes: idx}
	buf, err := t.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDepth2(b *testing.B)  { benchmarkDecodeDepth(b, 2) }
func BenchmarkDecodeDepth14(b *testing.B) { benchmarkDecodeDepth(b, 14) }
