// Package dns models the name-resolution layer of the enterprise network.
// The paper's on-network baselines "allow or reject traffic based on IP
// addresses, DNS names, packet flow direction and size" (§VI-C); modelling
// DNS explicitly lets the comparators express name-based policies and
// exposes the two ways they fail: one IP serving many names (blocking the
// name cannot be enforced at the packet layer once resolved) and one name
// resolving to many IPs (the blocklist chases a moving target).
package dns

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// Zone is an authoritative name→address map with reverse lookups.
type Zone struct {
	mu sync.RWMutex
	// forward maps fully-qualified names to address sets.
	forward map[string][]netip.Addr
	// reverse maps addresses to the names pointing at them.
	reverse map[netip.Addr][]string
	queries uint64
}

// ErrNXDomain reports an unknown name.
var ErrNXDomain = errors.New("dns: NXDOMAIN")

// NewZone returns an empty zone.
func NewZone() *Zone {
	return &Zone{
		forward: make(map[string][]netip.Addr),
		reverse: make(map[netip.Addr][]string),
	}
}

func canonical(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// AddRecord binds a name to an address (A record). Repeated calls
// accumulate round-robin address sets.
func (z *Zone) AddRecord(name string, addr netip.Addr) error {
	name = canonical(name)
	if name == "" {
		return fmt.Errorf("dns: empty name")
	}
	if !addr.Is4() {
		return fmt.Errorf("dns: %v is not an IPv4 address", addr)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	for _, a := range z.forward[name] {
		if a == addr {
			return nil
		}
	}
	z.forward[name] = append(z.forward[name], addr)
	z.reverse[addr] = append(z.reverse[addr], name)
	return nil
}

// Resolve returns the address set for a name.
func (z *Zone) Resolve(name string) ([]netip.Addr, error) {
	name = canonical(name)
	z.mu.Lock()
	z.queries++
	addrs := append([]netip.Addr(nil), z.forward[name]...)
	z.mu.Unlock()
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
	}
	return addrs, nil
}

// NamesFor returns every name resolving to an address (reverse lookup).
func (z *Zone) NamesFor(addr netip.Addr) []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := append([]string(nil), z.reverse[addr]...)
	sort.Strings(names)
	return names
}

// Queries returns the number of Resolve calls served.
func (z *Zone) Queries() uint64 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.queries
}

// NameBlocklist is the DNS-level comparator: a set of blocked names (and
// name suffixes, e.g. ".flurry.com") translated to packet-level decisions
// through the zone's reverse map. Its fundamental weakness is shared
// hosting: blocking a name blocks every co-hosted name on the same address,
// and a name absent from the zone at rule-compile time escapes entirely.
type NameBlocklist struct {
	zone *Zone

	mu       sync.RWMutex
	exact    map[string]struct{}
	suffixes []string
}

// NewNameBlocklist builds a blocklist over a zone.
func NewNameBlocklist(zone *Zone) *NameBlocklist {
	return &NameBlocklist{zone: zone, exact: make(map[string]struct{})}
}

// Block adds a name; names starting with '.' act as suffix matches.
func (b *NameBlocklist) Block(name string) {
	name = canonical(name)
	b.mu.Lock()
	defer b.mu.Unlock()
	if strings.HasPrefix(name, ".") {
		b.suffixes = append(b.suffixes, name)
		return
	}
	b.exact[name] = struct{}{}
}

// NameBlocked reports whether a specific name is on the list.
func (b *NameBlocklist) NameBlocked(name string) bool {
	name = canonical(name)
	b.mu.RLock()
	defer b.mu.RUnlock()
	if _, hit := b.exact[name]; hit {
		return true
	}
	for _, suf := range b.suffixes {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

// AddrBlocked reports whether packets to the address must be dropped: true
// when ANY name resolving to it is blocked. The collateral set — co-hosted
// names that die with it — is returned for audit.
func (b *NameBlocklist) AddrBlocked(addr netip.Addr) (blocked bool, collateral []string) {
	names := b.zone.NamesFor(addr)
	anyBlocked := false
	for _, n := range names {
		if b.NameBlocked(n) {
			anyBlocked = true
			break
		}
	}
	if !anyBlocked {
		return false, nil
	}
	for _, n := range names {
		if !b.NameBlocked(n) {
			collateral = append(collateral, n)
		}
	}
	return true, collateral
}
