package dns

import (
	"errors"
	"net/netip"
	"testing"
)

func TestQueryRoundTrip(t *testing.T) {
	q := &Query{ID: 0xbeef, Name: "Files.Corp.Example."}
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseQuery(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 0xbeef || back.Name != "files.corp.example" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestQueryErrors(t *testing.T) {
	if _, err := (&Query{ID: 1}).Marshal(); !errors.Is(err, ErrWireMalformed) {
		t.Fatalf("empty name: %v", err)
	}
	for _, raw := range [][]byte{nil, {1}, {0, 1, 0x80, 1, 'x'}, {0, 1, 0, 5, 'x'}} {
		if _, err := ParseQuery(raw); !errors.Is(err, ErrWireMalformed) {
			t.Fatalf("ParseQuery(%v): %v", raw, err)
		}
	}
}

func TestAnswerRoundTrip(t *testing.T) {
	a := &Answer{ID: 7, Addrs: []netip.Addr{
		netip.MustParseAddr("10.80.0.10"),
		netip.MustParseAddr("10.80.0.11"),
	}}
	wire, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAnswer(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 7 || back.RCode != RCodeOK || len(back.Addrs) != 2 || back.Addrs[1] != a.Addrs[1] {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestAnswerErrors(t *testing.T) {
	if _, err := ParseAnswer([]byte{0, 1, 0, 0}); !errors.Is(err, ErrWireMalformed) {
		t.Fatalf("QR clear: %v", err)
	}
	if _, err := ParseAnswer([]byte{0, 1, 0x80, 2, 1, 2, 3, 4}); !errors.Is(err, ErrWireMalformed) {
		t.Fatalf("count mismatch: %v", err)
	}
}

func TestZoneHandler(t *testing.T) {
	z := NewZone()
	if err := z.AddRecord("files.corp.example", netip.MustParseAddr("10.80.0.10")); err != nil {
		t.Fatal(err)
	}
	h := ZoneHandler(z)

	q, _ := (&Query{ID: 42, Name: "files.corp.example"}).Marshal()
	ans, err := ParseAnswer(h(q))
	if err != nil {
		t.Fatal(err)
	}
	if ans.ID != 42 || ans.RCode != RCodeOK || len(ans.Addrs) != 1 || ans.Addrs[0] != netip.MustParseAddr("10.80.0.10") {
		t.Fatalf("answer = %+v", ans)
	}

	nx, _ := (&Query{ID: 43, Name: "nope.example"}).Marshal()
	ans, err = ParseAnswer(h(nx))
	if err != nil {
		t.Fatal(err)
	}
	if ans.ID != 43 || ans.RCode != RCodeNXDomain || len(ans.Addrs) != 0 {
		t.Fatalf("nxdomain answer = %+v", ans)
	}

	if h([]byte("junk")) != nil {
		t.Fatal("undecodable query answered")
	}
	if z.Queries() != 2 {
		t.Fatalf("zone queries = %d, want 2", z.Queries())
	}
}
