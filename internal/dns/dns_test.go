package dns

import (
	"errors"
	"net/netip"
	"testing"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestZoneResolve(t *testing.T) {
	z := NewZone()
	if err := z.AddRecord("api.dropbox.com", addr("162.125.4.1")); err != nil {
		t.Fatal(err)
	}
	if err := z.AddRecord("api.dropbox.com", addr("162.125.4.2")); err != nil {
		t.Fatal(err)
	}
	addrs, err := z.Resolve("API.Dropbox.Com.") // case + trailing dot
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 {
		t.Fatalf("addrs = %v", addrs)
	}
	if _, err := z.Resolve("nope.example"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v", err)
	}
	if z.Queries() != 2 {
		t.Fatalf("queries = %d", z.Queries())
	}
}

func TestZoneDuplicateRecordIdempotent(t *testing.T) {
	z := NewZone()
	for i := 0; i < 3; i++ {
		if err := z.AddRecord("x.example", addr("10.0.0.1")); err != nil {
			t.Fatal(err)
		}
	}
	addrs, _ := z.Resolve("x.example")
	if len(addrs) != 1 {
		t.Fatalf("duplicates accumulated: %v", addrs)
	}
}

func TestZoneErrors(t *testing.T) {
	z := NewZone()
	if err := z.AddRecord("", addr("10.0.0.1")); err == nil {
		t.Error("empty name accepted")
	}
	if err := z.AddRecord("x.example", netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Error("IPv6 accepted in v4 zone")
	}
}

func TestReverseLookup(t *testing.T) {
	z := NewZone()
	shared := addr("31.13.66.19")
	_ = z.AddRecord("graph.facebook.com", shared)
	_ = z.AddRecord("login.facebook.com", shared)
	names := z.NamesFor(shared)
	if len(names) != 2 || names[0] != "graph.facebook.com" {
		t.Fatalf("names = %v", names)
	}
	if got := z.NamesFor(addr("1.2.3.4")); len(got) != 0 {
		t.Fatalf("phantom names %v", got)
	}
}

func TestNameBlocklistExactAndSuffix(t *testing.T) {
	z := NewZone()
	b := NewNameBlocklist(z)
	b.Block("data.flurry.com")
	b.Block(".doubleclick.net")
	if !b.NameBlocked("data.flurry.com") {
		t.Error("exact name not blocked")
	}
	if !b.NameBlocked("ads.g.DoubleClick.net") {
		t.Error("suffix not blocked")
	}
	if b.NameBlocked("flurry.com") {
		t.Error("parent name wrongly blocked")
	}
}

func TestSharedHostingCollateral(t *testing.T) {
	// The baseline's failure mode: graph and login share one IP. Blocking
	// the analytics name at packet level takes the login down with it.
	z := NewZone()
	shared := addr("31.13.66.19")
	_ = z.AddRecord("graph.facebook.com", shared)
	_ = z.AddRecord("login.facebook.com", shared)
	b := NewNameBlocklist(z)
	b.Block("graph.facebook.com")

	blocked, collateral := b.AddrBlocked(shared)
	if !blocked {
		t.Fatal("address not blocked")
	}
	if len(collateral) != 1 || collateral[0] != "login.facebook.com" {
		t.Fatalf("collateral = %v", collateral)
	}
	// Unrelated addresses stay open.
	if blocked, _ := b.AddrBlocked(addr("8.8.8.8")); blocked {
		t.Fatal("unrelated address blocked")
	}
}

func TestUnlistedNameEscapes(t *testing.T) {
	// A tracker endpoint absent from the zone at rule time is invisible to
	// name-based blocking — BorderPatrol's stack context has no such gap.
	z := NewZone()
	b := NewNameBlocklist(z)
	b.Block("data.flurry.com")
	if blocked, _ := b.AddrBlocked(addr("203.0.113.77")); blocked {
		t.Fatal("unknown address blocked without any record")
	}
}
