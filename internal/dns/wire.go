package dns

import (
	"errors"
	"fmt"
	"net/netip"
)

// Wire format for DNS-over-UDP through the simulated gateway: a compact
// A-record query/answer encoding riding in transport.UDPDatagram
// payloads. It keeps DNS's shape — 16-bit transaction ID, a QR bit, an
// RCODE, a name, an address set — without the label-compression machinery
// the simulator does not need. The point of the workload is not protocol
// fidelity but the path: a provisioned app's resolver opens a UDP socket,
// the Context Manager tags it like any other socket, the gateway policy-
// checks every query datagram, and the zone answers — the first
// non-HTTP traffic through the full stack.
//
// Layout (big-endian):
//
//	query:  id(2) | flags(1, QR=0) | nameLen(1) | name
//	answer: id(2) | flags(1, QR=1 | rcode in low nibble) | count(1) | count × 4-byte IPv4
const (
	// flagResponse is the QR bit in the flags octet.
	flagResponse = 0x80

	// RCodeOK is a successful resolution.
	RCodeOK = 0
	// RCodeNXDomain reports an unknown name (mirrors DNS RCODE 3).
	RCodeNXDomain = 3

	// MaxName bounds query names (DNS's own limit is 255 octets).
	MaxName = 255
	// maxAnswers bounds an answer's address set (the count octet).
	maxAnswers = 255
)

// Wire-format errors.
var (
	ErrWireMalformed = errors.New("dns: malformed message")
)

// Query is one A-record question.
type Query struct {
	// ID is the transaction identifier echoed in the answer.
	ID uint16
	// Name is the fully-qualified name being resolved.
	Name string
}

// Marshal renders the query.
func (q *Query) Marshal() ([]byte, error) {
	name := canonical(q.Name)
	if name == "" || len(name) > MaxName {
		return nil, fmt.Errorf("%w: name %q", ErrWireMalformed, q.Name)
	}
	buf := make([]byte, 0, 4+len(name))
	buf = append(buf, byte(q.ID>>8), byte(q.ID), 0, byte(len(name)))
	return append(buf, name...), nil
}

// ParseQuery parses a query payload.
func ParseQuery(b []byte) (*Query, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrWireMalformed, len(b))
	}
	if b[2]&flagResponse != 0 {
		return nil, fmt.Errorf("%w: QR set on query", ErrWireMalformed)
	}
	n := int(b[3])
	if n == 0 || len(b) != 4+n {
		return nil, fmt.Errorf("%w: name length %d in %d bytes", ErrWireMalformed, n, len(b))
	}
	return &Query{ID: uint16(b[0])<<8 | uint16(b[1]), Name: string(b[4:])}, nil
}

// Answer is the response to a Query.
type Answer struct {
	// ID echoes the query's transaction identifier.
	ID uint16
	// RCode is RCodeOK or RCodeNXDomain.
	RCode byte
	// Addrs is the resolved address set (round-robin order), empty on
	// NXDOMAIN.
	Addrs []netip.Addr
}

// Marshal renders the answer.
func (a *Answer) Marshal() ([]byte, error) {
	if len(a.Addrs) > maxAnswers {
		return nil, fmt.Errorf("%w: %d answers", ErrWireMalformed, len(a.Addrs))
	}
	buf := make([]byte, 0, 4+4*len(a.Addrs))
	buf = append(buf, byte(a.ID>>8), byte(a.ID), flagResponse|a.RCode&0x0f, byte(len(a.Addrs)))
	for _, addr := range a.Addrs {
		if !addr.Is4() {
			return nil, fmt.Errorf("%w: %v is not IPv4", ErrWireMalformed, addr)
		}
		a4 := addr.As4()
		buf = append(buf, a4[:]...)
	}
	return buf, nil
}

// ParseAnswer parses an answer payload.
func ParseAnswer(b []byte) (*Answer, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrWireMalformed, len(b))
	}
	if b[2]&flagResponse == 0 {
		return nil, fmt.Errorf("%w: QR clear on answer", ErrWireMalformed)
	}
	count := int(b[3])
	if len(b) != 4+4*count {
		return nil, fmt.Errorf("%w: %d answers in %d bytes", ErrWireMalformed, count, len(b))
	}
	out := &Answer{ID: uint16(b[0])<<8 | uint16(b[1]), RCode: b[2] & 0x0f}
	for i := 0; i < count; i++ {
		out.Addrs = append(out.Addrs, netip.AddrFrom4([4]byte(b[4+4*i:8+4*i])))
	}
	return out, nil
}

// ZoneHandler serves a zone over UDP: it parses each query datagram,
// resolves it against the zone, and marshals the answer (NXDOMAIN for
// unknown names, nil for undecodable payloads). Plug it into
// netsim.Server.UDPHandler to stand up a DNS server behind the gateway.
func ZoneHandler(z *Zone) func(payload []byte) []byte {
	return func(payload []byte) []byte {
		q, err := ParseQuery(payload)
		if err != nil {
			return nil
		}
		addrs, err := z.Resolve(q.Name)
		ans := &Answer{ID: q.ID}
		if err != nil {
			ans.RCode = RCodeNXDomain
		} else {
			ans.Addrs = addrs
		}
		out, err := ans.Marshal()
		if err != nil {
			return nil
		}
		return out
	}
}
