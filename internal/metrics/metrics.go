// Package metrics is BorderPatrol's dependency-free observability core:
// lock-free counters and gauges, log-bucketed latency histograms, and a
// registry that renders the Prometheus text exposition format.
//
// The design constraint is the enforcement hot path: the cache-hit packet
// path runs in ~100 ns and the batched drain in ~45 ns/packet, so an
// instrument on those paths may cost at most one uncontended atomic
// add. Counters are striped across padded per-core shards that are summed
// only at scrape time (no CAS loops, no locks, no false sharing between
// cores); gauges are a single atomic word; histograms record with two
// atomic adds into a fixed bucket array and allocate nothing.
//
// Components own their instruments and attach them to a *Registry via
// their RegisterMetrics methods. Counters that already exist as component
// stats are exported through CounterFunc/GaugeFunc closures, so the hot
// path pays nothing for exposure — the closure runs at scrape time only.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// numShards is the counter stripe count: the smallest power of two ≥
// GOMAXPROCS at init, capped so a wide machine doesn't bloat every
// counter. A power of two makes the shard pick a single mask. On a
// single-core box this collapses to one shard and Add is exactly one
// atomic add with no shard pick at all.
var numShards = func() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	return s
}()

// counterShard pads one stripe to a cache line so two cores bumping
// adjacent shards never ping-pong the same line.
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter striped across padded
// per-core shards. Add is lock-free and wait-free: one atomic add into a
// pseudo-randomly picked shard (math/rand/v2's per-M generator, no lock,
// ~2 ns), summed only at scrape time.
type Counter struct {
	shards []counterShard
}

// NewCounter builds an unregistered counter (Registry.Counter registers
// one in the same step).
func NewCounter() *Counter {
	return &Counter{shards: make([]counterShard, numShards)}
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	s := c.shards
	if len(s) == 1 {
		s[0].n.Add(n)
		return
	}
	s[rand.Uint32()&uint32(len(s)-1)].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. It is a snapshot: concurrent Adds may or may not
// be included, but the value never decreases across calls.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (queue depth, live entries,
// staleness age). One atomic word; Set/Add/Value are lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge builds an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; gauges live off the packet path).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Kind classifies a metric family.
type Kind uint8

// Family kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name=value dimension on a series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one labeled instance within a family. Exactly one of the
// value sources is set, matching the family kind.
type series struct {
	labels    []Label
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	series     []*series
}

// Registry holds metric families in registration order and renders them.
// Registration takes a lock; reads on registered instruments never do.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName enforces the Prometheus identifier charset. Registration is
// programmer-driven (no user input), so violations panic.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// register attaches one series to its family, creating the family on
// first use. Kind mismatches and duplicate label sets panic: both are
// wiring bugs, not runtime conditions.
func (r *Registry) register(name, help string, kind Kind, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range s.labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, fam.kind, kind))
	}
	for _, existing := range fam.series {
		if sameLabels(existing.labels, s.labels) {
			panic(fmt.Sprintf("metrics: duplicate registration of %s%s", name, formatLabels(s.labels)))
		}
	}
	fam.series = append(fam.series, s)
}

// formatLabels renders a label set for panic messages.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func sameLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter creates and registers a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := NewCounter()
	r.register(name, help, KindCounter, &series{labels: labels, counter: c})
	return c
}

// CounterFunc registers a counter series whose value is computed at
// scrape time — the zero-hot-path-cost bridge to counters a component
// already maintains. fn must be monotone and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, KindCounter, &series{labels: labels, counterFn: fn})
}

// Gauge creates and registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := NewGauge()
	r.register(name, help, KindGauge, &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge series computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, &series{labels: labels, gaugeFn: fn})
}

// Histogram creates and registers a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := NewHistogram()
	r.register(name, help, KindHistogram, &series{labels: labels, hist: h})
	return h
}

// RegisterHistogram attaches a component-owned histogram to the registry.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, KindHistogram, &series{labels: labels, hist: h})
}

// Sample is one flattened series snapshot, for registry-driven printouts
// and tests. Counter and gauge samples carry Value; histogram samples
// carry Hist.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	Value  float64
	Hist   *HistogramSnapshot
}

// Snapshot flattens every registered series in registration order. Scrape
// functions run inline, so the snapshot is as fresh as the instruments.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var out []Sample
	for _, fam := range fams {
		for _, s := range fam.series {
			smp := Sample{Name: fam.name, Help: fam.help, Kind: fam.kind, Labels: s.labels}
			switch {
			case s.counter != nil:
				smp.Value = float64(s.counter.Value())
			case s.counterFn != nil:
				smp.Value = float64(s.counterFn())
			case s.gauge != nil:
				smp.Value = s.gauge.Value()
			case s.gaugeFn != nil:
				smp.Value = s.gaugeFn()
			case s.hist != nil:
				snap := s.hist.Snapshot()
				smp.Hist = &snap
			}
			out = append(out, smp)
		}
	}
	return out
}
