package metrics

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentSum(t *testing.T) {
	c := NewCounter()
	const (
		workers = 8
		perG    = 100_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perG {
		t.Fatalf("counter = %d, want %d", got, workers*perG)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(41)
	g.Add(1.5)
	if got := g.Value(); got != 42.5 {
		t.Fatalf("gauge = %v, want 42.5", got)
	}
	g.Add(-42.5)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("bp_ok_total", "fine")
	expectPanic("duplicate", func() { r.Counter("bp_ok_total", "again") })
	expectPanic("kind clash", func() { r.Gauge("bp_ok_total", "as gauge") })
	expectPanic("bad name", func() { r.Counter("bad-name", "dashes") })
	expectPanic("bad label", func() { r.Counter("bp_lbl_total", "l", L("bad-key", "v")) })
	// Same name with distinct labels is one family, not a duplicate.
	r.Counter("bp_labeled_total", "l", L("kind", "a"))
	r.Counter("bp_labeled_total", "l", L("kind", "b"))
}

// sampleLine matches one Prometheus exposition sample line.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9][0-9eE.+-]*|[+-]Inf|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bp_packets_total", "packets seen", L("decision", "allow"))
	c.Add(7)
	r.CounterFunc("bp_fn_total", "computed", func() uint64 { return 9 })
	g := r.Gauge("bp_depth", "queue depth")
	g.Set(3.5)
	h := r.Histogram("bp_latency_ns", "latency")
	for _, v := range []int64{1, 100, 100, 5000, 1 << 40} {
		h.Record(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE bp_packets_total counter",
		`bp_packets_total{decision="allow"} 7`,
		"bp_fn_total 9",
		"# TYPE bp_depth gauge",
		"bp_depth 3.5",
		"# TYPE bp_latency_ns histogram",
		`bp_latency_ns_bucket{le="+Inf"} 5`,
		"bp_latency_ns_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}

	// Every non-comment line must be a well-formed sample.
	helpOrType := 0
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
			helpOrType++
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
	if helpOrType != 8 {
		t.Errorf("expected 4 HELP + 4 TYPE lines, got %d", helpOrType)
	}

	// Histogram cumulative counts must be non-decreasing and end at the
	// total, and _sum must equal the recorded sum.
	wantSum := uint64(1 + 100 + 100 + 5000 + 1<<40)
	if !strings.Contains(out, "bp_latency_ns_sum "+strconv.FormatUint(wantSum, 10)) {
		t.Errorf("missing histogram sum %d\n%s", wantSum, out)
	}
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "bp_latency_ns_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts decreased: %q after %d", line, prev)
		}
		prev = v
	}
	if prev != 5 {
		t.Errorf("final cumulative bucket = %d, want 5", prev)
	}
}

func TestSnapshotFlattens(t *testing.T) {
	r := NewRegistry()
	r.Counter("bp_a_total", "a").Add(3)
	r.GaugeFunc("bp_b", "b", func() float64 { return 1.25 })
	h := r.Histogram("bp_c_ns", "c")
	h.Record(10)
	samples := r.Snapshot()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if samples[0].Name != "bp_a_total" || samples[0].Value != 3 || samples[0].Kind != KindCounter {
		t.Errorf("counter sample wrong: %+v", samples[0])
	}
	if samples[1].Value != 1.25 || samples[1].Kind != KindGauge {
		t.Errorf("gauge sample wrong: %+v", samples[1])
	}
	if samples[2].Hist == nil || samples[2].Hist.Count() != 1 || samples[2].Kind != KindHistogram {
		t.Errorf("histogram sample wrong: %+v", samples[2])
	}
}
