package metrics

import (
	"strings"
	"testing"
)

func TestAggregateMergesRegistries(t *testing.T) {
	r0, r1 := NewRegistry(), NewRegistry()
	r0.Counter("bp_pkts_total", "Packets.", Label{"stage", "in"}).Add(3)
	r1.Counter("bp_pkts_total", "Packets.", Label{"stage", "in"}).Add(5)
	r1.Gauge("bp_flows", "Open flows.").Set(2)
	h := r0.Histogram("bp_latency_seconds", "Latency.")
	h.Record(2000)

	a := NewAggregate("gateway")
	a.Attach("gw0", r0)
	a.Attach("gw1", r1)

	var sb strings.Builder
	if err := a.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// One HELP/TYPE per family, even though bp_pkts_total spans registries.
	if got := strings.Count(out, "# HELP bp_pkts_total"); got != 1 {
		t.Fatalf("HELP emitted %d times:\n%s", got, out)
	}
	if got := strings.Count(out, "# TYPE bp_pkts_total counter"); got != 1 {
		t.Fatalf("TYPE emitted %d times:\n%s", got, out)
	}
	// Each registry's series carries its injected label first.
	for _, want := range []string{
		`bp_pkts_total{gateway="gw0",stage="in"} 3`,
		`bp_pkts_total{gateway="gw1",stage="in"} 5`,
		`bp_flows{gateway="gw1"} 2`,
		`bp_latency_seconds_count{gateway="gw0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `bp_latency_seconds_bucket{gateway="gw0",le="+Inf"} 1`) {
		t.Errorf("histogram buckets not rendered with injected label:\n%s", out)
	}
}

func TestAggregateSnapshotGroupsFamilies(t *testing.T) {
	r0, r1 := NewRegistry(), NewRegistry()
	r0.Counter("bp_a_total", "A.").Add(1)
	r0.Counter("bp_b_total", "B.").Add(1)
	r1.Counter("bp_a_total", "A.").Add(1)

	a := NewAggregate("gateway")
	a.Attach("gw0", r0)
	a.Attach("gw1", r1)

	samples := a.Snapshot()
	var names []string
	for _, s := range samples {
		names = append(names, s.Name)
		if len(s.Labels) == 0 || s.Labels[0].Key != "gateway" {
			t.Fatalf("sample %s missing injected label: %+v", s.Name, s.Labels)
		}
	}
	// Family-contiguous, first-seen order: both bp_a_total series together.
	want := []string{"bp_a_total", "bp_a_total", "bp_b_total"}
	if len(names) != len(want) {
		t.Fatalf("samples = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sample order = %v, want %v", names, want)
		}
	}
}
