package metrics

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

// exactQuantile computes the true q-quantile of a sorted sample with the
// same rank convention the histogram uses (rank ⌈q·n⌉, 1-based).
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram's estimate brackets the exact
// value: exact ≤ estimate < 1.25·exact + 1 (the documented bound — a
// bucket is at most a quarter of its base value wide, and values below 4
// are exact).
func checkQuantiles(t *testing.T, name string, values []int64) {
	t.Helper()
	h := NewHistogram()
	for _, v := range values {
		h.Record(v)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		exact := exactQuantile(sorted, q)
		est := h.Snapshot().Quantile(q)
		if est < uint64(exact) {
			t.Errorf("%s: q%g estimate %d below exact %d", name, q, est, exact)
		}
		if bound := uint64(float64(exact)*1.25) + 1; est > bound {
			t.Errorf("%s: q%g estimate %d exceeds %d (exact %d + 25%%)", name, q, est, bound, exact)
		}
	}
}

func TestHistogramQuantilesPointMass(t *testing.T) {
	for _, v := range []int64{0, 1, 3, 4, 7, 100, 1_000_000, 123_456_789} {
		values := make([]int64, 10_000)
		for i := range values {
			values[i] = v
		}
		checkQuantiles(t, "point-mass", values)
	}
}

func TestHistogramQuantilesBimodal(t *testing.T) {
	// 90% fast path around 100 ns, 10% slow path around 2 ms — the exact
	// shape a cache-hit/cache-miss latency split produces. p50 must land
	// in the fast mode, p99/p999 in the slow one.
	rng := rand.New(rand.NewPCG(1, 2))
	values := make([]int64, 50_000)
	for i := range values {
		if rng.Float64() < 0.9 {
			values[i] = 80 + rng.Int64N(40)
		} else {
			values[i] = 1_900_000 + rng.Int64N(200_000)
		}
	}
	checkQuantiles(t, "bimodal", values)
}

func TestHistogramQuantilesHeavyTail(t *testing.T) {
	// Pareto-ish tail over five decades.
	rng := rand.New(rand.NewPCG(3, 4))
	values := make([]int64, 50_000)
	for i := range values {
		u := rng.Float64()
		values[i] = int64(50.0 / (1.0001 - u))
	}
	checkQuantiles(t, "heavy-tail", values)
}

func TestHistogramQuantilesUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	values := make([]int64, 50_000)
	for i := range values {
		values[i] = rng.Int64N(10_000_000)
	}
	checkQuantiles(t, "uniform", values)
}

func TestHistogramOverflowClamps(t *testing.T) {
	h := NewHistogram()
	h.Record(1 << 40) // ~18 minutes: beyond the 2^33-1 range
	h.Record(-5)      // negative clamps to zero
	s := h.Snapshot()
	if got := s.Counts[NumBuckets-1]; got != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", got)
	}
	if got := s.Counts[0]; got != 1 {
		t.Fatalf("zero bucket count = %d, want 1", got)
	}
	if got := s.Quantile(1.0); got != BucketUpper(NumBuckets-1) {
		t.Fatalf("overflow quantile = %d, want clamp bound %d", got, BucketUpper(NumBuckets-1))
	}
}

func TestHistogramBucketBoundsMonotone(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Fatalf("BucketUpper(%d)=%d not above BucketUpper(%d)=%d",
				i, BucketUpper(i), i-1, BucketUpper(i-1))
		}
	}
	// Every value maps into the bucket whose bound brackets it.
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<33 - 1} {
		i := bucketIndex(v)
		if BucketUpper(i) < v {
			t.Errorf("value %d above its bucket %d bound %d", v, i, BucketUpper(i))
		}
		if i > 0 && BucketUpper(i-1) >= v {
			t.Errorf("value %d fits the previous bucket %d (bound %d)", v, i-1, BucketUpper(i-1))
		}
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	parts := make([]*Histogram, 3)
	var all []int64
	for p := range parts {
		parts[p] = NewHistogram()
		for i := 0; i < 10_000; i++ {
			v := rng.Int64N(1_000_000)
			parts[p].Record(v)
			all = append(all, v)
		}
	}
	// (a+b)+c
	ab := parts[0].Snapshot()
	bs := parts[1].Snapshot()
	ab.Merge(&bs)
	cs := parts[2].Snapshot()
	ab.Merge(&cs)
	// a+(b+c)
	bc := parts[1].Snapshot()
	cs2 := parts[2].Snapshot()
	bc.Merge(&cs2)
	as := parts[0].Snapshot()
	as.Merge(&bc)
	if ab != as {
		t.Fatal("merge is not associative: (a+b)+c != a+(b+c)")
	}
	// The merge equals one histogram fed the union stream.
	union := NewHistogram()
	for _, v := range all {
		union.Record(v)
	}
	if us := union.Snapshot(); us != ab {
		t.Fatal("merged snapshot differs from union-stream histogram")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	const (
		workers = 8
		perG    = 20_000
	)
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed+1))
			for i := 0; i < perG; i++ {
				h.Record(rng.Int64N(1 << 30))
			}
		}(uint64(w))
	}
	// Concurrent scrapes must observe sane intermediate states.
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		if n := s.Count(); n > workers*perG {
			t.Errorf("snapshot count %d exceeds total records", n)
		}
		_ = s.Quantile(0.99)
	}
	wg.Wait()
	if n := h.Snapshot().Count(); n != workers*perG {
		t.Fatalf("lost records: count %d, want %d", n, workers*perG)
	}
}
