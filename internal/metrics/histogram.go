package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-size log-bucketed latency histogram (HDR-style).
// Values are non-negative integers — nanoseconds on every latency path in
// this repo, but nothing assumes a unit. Record is lock-free, wait-free
// and allocation-free: one atomic add into the value's bucket and one
// into the running sum.
//
// # Bucket layout
//
// 128 buckets with 2 sub-bucket bits: values 0–3 get exact buckets, and
// every power-of-two octave above that splits into 4 sub-buckets, so a
// bucket's width is at most 1/4 of its base value and any quantile
// estimate (reported as the bucket's upper bound) overshoots the true
// value by less than 25%. The top octave ends at 2³³−1 ns ≈ 8.6 s;
// larger values clamp into the last bucket, which renders as +Inf.
const (
	// histSubBits is the sub-bucket resolution: 1<<histSubBits sub-buckets
	// per octave, giving ≤ 2^-histSubBits relative bucket width.
	histSubBits = 2
	histSub     = 1 << histSubBits
	// NumBuckets is the fixed bucket count: histSub exact low buckets plus
	// 31 octaves × histSub sub-buckets.
	NumBuckets = histSub + 31*histSub
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the top set bit, ≥ histSubBits
	idx := histSub + (exp-histSubBits)*histSub + int((v>>(exp-histSubBits))&(histSub-1))
	if idx >= NumBuckets {
		return NumBuckets - 1 // clamp: values ≥ 2^33
	}
	return idx
}

// BucketUpper returns bucket i's inclusive upper bound. The last bucket
// holds clamped overflow too, so its nominal bound understates it; the
// Prometheus rendering folds it into +Inf for that reason.
func BucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := i/histSub - 1 + histSubBits
	sub := uint64(i % histSub)
	return 1<<exp + (sub+1)<<(exp-histSubBits) - 1
}

// Histogram records values; Snapshot extracts a consistent-enough copy
// for rendering and quantiles (bucket loads are individually atomic; a
// scrape racing Record may see a count without its sum increment, which
// only perturbs the mean, never a quantile's ordering).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// NewHistogram builds an unregistered histogram (Registry.Histogram
// registers one in the same step).
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation. Negative values clamp to zero so a clock
// anomaly can never corrupt the bucket index.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.sum.Add(uint64(v))
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram: plain values,
// mergeable and serializable.
type HistogramSnapshot struct {
	Counts [NumBuckets]uint64
	Sum    uint64
}

// Merge folds o into s (bucket-wise addition). Merging snapshots of
// per-core or per-stage histograms is exact: the layout is identical, so
// merge is associative and commutative and quantiles of the merge equal
// quantiles of the union stream within one bucket's width.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
}

// Count is the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean is the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket containing the rank-⌈q·n⌉ observation, so the estimate e of a
// true value v satisfies v ≤ e < 1.25·v (exact for values < 4). Returns
// 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}
