package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per family,
// then one line per series. Histograms render cumulative le buckets with
// integer nanosecond bounds plus _sum and _count; the clamp bucket folds
// into +Inf (its nominal bound understates clamped observations).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, fam := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.series {
			switch {
			case s.counter != nil:
				writeLine(bw, fam.name, s.labels, "", "", strconv.FormatUint(s.counter.Value(), 10))
			case s.counterFn != nil:
				writeLine(bw, fam.name, s.labels, "", "", strconv.FormatUint(s.counterFn(), 10))
			case s.gauge != nil:
				writeLine(bw, fam.name, s.labels, "", "", formatFloat(s.gauge.Value()))
			case s.gaugeFn != nil:
				writeLine(bw, fam.name, s.labels, "", "", formatFloat(s.gaugeFn()))
			case s.hist != nil:
				writeHistogram(bw, fam.name, s.labels, s.hist.Snapshot())
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name string, labels []Label, snap HistogramSnapshot) {
	var cum uint64
	for i, c := range snap.Counts[:NumBuckets-1] {
		cum += c
		if c == 0 && i > 0 && snap.Counts[i-1] == 0 {
			// Empty run: only emit a bucket line when its cumulative count
			// changed or it closes a populated region, keeping scrapes
			// compact. The preceding populated bucket and +Inf pin the
			// cumulative series, so omitted lines lose no information.
			continue
		}
		writeLine(w, name+"_bucket", labels, "le", strconv.FormatUint(BucketUpper(i), 10), strconv.FormatUint(cum, 10))
	}
	cum += snap.Counts[NumBuckets-1]
	writeLine(w, name+"_bucket", labels, "le", "+Inf", strconv.FormatUint(cum, 10))
	writeLine(w, name+"_sum", labels, "", "", strconv.FormatUint(snap.Sum, 10))
	writeLine(w, name+"_count", labels, "", "", strconv.FormatUint(cum, 10))
}

// writeLine emits one sample line, appending an optional extra label
// (the histogram le) after the series labels.
func writeLine(w io.Writer, name string, labels []Label, extraKey, extraVal, value string) {
	io.WriteString(w, name)
	if len(labels) > 0 || extraKey != "" {
		io.WriteString(w, "{")
		for i, l := range labels {
			if i > 0 {
				io.WriteString(w, ",")
			}
			// %q escapes \, " and newlines — exactly the label-value escapes
			// the exposition format requires.
			fmt.Fprintf(w, "%s=%q", l.Key, l.Value)
		}
		if extraKey != "" {
			if len(labels) > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", extraKey, extraVal)
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, value)
	io.WriteString(w, "\n")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", "\\\\")
	return strings.ReplaceAll(h, "\n", "\\n")
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
