package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Aggregate merges any number of Registries into one scrape. Each
// attached registry gets a distinguishing label (e.g. gateway="gw3")
// injected in front of every series' own labels, so N gateways' identical
// family names coexist in a single exposition — the fleet's one-scrape
// /metrics — and per-gateway breakdowns stay one PromQL `by (gateway)`
// away.
//
// Aggregation happens at scrape time over Registry.Snapshot(); nothing
// is copied or re-registered, so attaching a registry costs the hot path
// exactly as much as Registry itself does: nothing.
type Aggregate struct {
	key string

	mu      sync.Mutex
	entries []aggEntry
}

type aggEntry struct {
	value string
	reg   *Registry
}

// NewAggregate builds an empty aggregate whose injected label uses the
// given key ("gateway", "shard", ...).
func NewAggregate(key string) *Aggregate { return &Aggregate{key: key} }

// Attach adds a registry under a label value. Values must be unique per
// aggregate — two registries under one value would emit duplicate series.
// Attach order is scrape order.
func (a *Aggregate) Attach(value string, r *Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = append(a.entries, aggEntry{value: value, reg: r})
}

// Snapshot evaluates every attached registry and returns the merged
// samples, each carrying its registry's injected label first. Samples are
// grouped by family (first-seen order), so a family spanning registries
// renders contiguously.
func (a *Aggregate) Snapshot() []Sample {
	a.mu.Lock()
	entries := make([]aggEntry, len(a.entries))
	copy(entries, a.entries)
	a.mu.Unlock()

	famIdx := make(map[string]int)
	var fams [][]Sample
	for _, e := range entries {
		for _, s := range e.reg.Snapshot() {
			s.Labels = append([]Label{{Key: a.key, Value: e.value}}, s.Labels...)
			i, ok := famIdx[s.Name]
			if !ok {
				i = len(fams)
				famIdx[s.Name] = i
				fams = append(fams, nil)
			}
			fams[i] = append(fams[i], s)
		}
	}
	var out []Sample
	for _, fam := range fams {
		out = append(out, fam...)
	}
	return out
}

// WritePrometheus renders the merged families in the text exposition
// format: one HELP/TYPE pair per family (from its first-attached
// registry), then every registry's series.
func (a *Aggregate) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	samples := a.Snapshot()
	last := ""
	for _, s := range samples {
		if s.Name != last {
			fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
			last = s.Name
		}
		switch {
		case s.Hist != nil:
			writeHistogram(bw, s.Name, s.Labels, *s.Hist)
		case s.Kind == KindCounter:
			writeLine(bw, s.Name, s.Labels, "", "", strconv.FormatUint(uint64(s.Value), 10))
		default:
			writeLine(bw, s.Name, s.Labels, "", "", formatFloat(s.Value))
		}
	}
	return bw.Flush()
}

// Handler serves the aggregate as a Prometheus scrape endpoint.
func (a *Aggregate) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		a.WritePrometheus(w)
	})
}
