package metrics

import (
	"strings"
	"testing"
)

// BenchmarkHistogramRecord is gated in CI (bench/baseline.txt): the
// histogram is recorded from inside the ~100 ns enforcement hot path, so
// Record must stay a handful of nanoseconds and allocation-free.
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) & 0xfffff)
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			h.Record(v & 0xfffff)
			v += 97
		}
	})
}

// BenchmarkCounterAdd is gated in CI: sharded counters replace the
// enforcer's per-packet outcome atomics, so Add must stay at one atomic
// add (plus a ~2 ns shard pick on multi-core).
func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkQuantile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 100_000; i++ {
		h.Record(i * 37 % 1_000_000)
	}
	s := h.Snapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, name := range []string{"bp_a_total", "bp_b_total", "bp_c_total"} {
		r.Counter(name, "bench counter").Add(123456)
	}
	h := r.Histogram("bp_lat_ns", "bench histogram")
	for i := int64(0); i < 10_000; i++ {
		h.Record(i * 131 % 2_000_000)
	}
	var sb strings.Builder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := r.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
	}
}
