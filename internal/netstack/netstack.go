// Package netstack models the device-side socket layer with Java's exact
// semantics (paper §II-B1): a java.net.Socket object is created eagerly in
// managed code, but the operating-system socket (the socket(2) syscall)
// happens lazily on the first connect or bind. BorderPatrol's Context
// Manager hooks these transitions, so the distinction matters.
package netstack

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
)

// Errors for socket misuse.
var (
	ErrClosed       = errors.New("netstack: socket closed")
	ErrNotConnected = errors.New("netstack: socket not connected")
)

// ConnectHook observes a completed connect: the paper's Xposed post-hooks
// run after the OS socket exists and the connection is established, so the
// hook receives a live fd it can set options on.
type ConnectHook func(sock *JavaSocket)

// Stack is the per-device network stack: it allocates ephemeral ports,
// owns the kernel reference, and dispatches post-connect hooks.
type Stack struct {
	mu        sync.Mutex
	kern      *kernel.Kernel
	localAddr netip.Addr
	nextPort  uint16
	hooks     []ConnectHook
}

// NewStack builds a stack for a device with the given local address.
func NewStack(k *kernel.Kernel, local netip.Addr) *Stack {
	return &Stack{
		kern:      k,
		localAddr: local,
		nextPort:  40000,
	}
}

// Kernel returns the underlying kernel (for test assertions and the JNI
// shim, which issues setsockopt directly).
func (st *Stack) Kernel() *kernel.Kernel { return st.kern }

// LocalAddr returns the device address.
func (st *Stack) LocalAddr() netip.Addr { return st.localAddr }

// RegisterConnectHook installs a post-connect hook (the Xposed framework
// calls this when the Context Manager module loads).
func (st *Stack) RegisterConnectHook(h ConnectHook) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.hooks = append(st.hooks, h)
}

func (st *Stack) allocPort() uint16 {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := st.nextPort
	st.nextPort++
	if st.nextPort == 0 {
		st.nextPort = 40000
	}
	return p
}

func (st *Stack) snapshotHooks() []ConnectHook {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]ConnectHook(nil), st.hooks...)
}

// JavaSocket mirrors java.net.Socket: constructing it does NOT create an
// OS socket; Connect does (lazy initialization). A socket built with
// NewDatagramSocket mirrors java.net.DatagramSocket instead: the same
// lazy lifecycle and the same post-connect hooks (so the Context Manager
// tags UDP flows exactly like TCP ones), but payloads ride in UDP
// datagrams and there is no connection handshake.
type JavaSocket struct {
	stack *Stack
	// proto is the transport protocol (ipv4.ProtoTCP or ipv4.ProtoUDP).
	proto byte
	mu    sync.Mutex
	// fd is -1 until the lazy socket(2) call.
	fd        int
	connected bool
	closed    bool
	remote    netip.AddrPort
	local     netip.AddrPort
	// OwnerUID is the Android uid of the app that owns the socket.
	OwnerUID int
	// ctx carries opaque per-socket context attached by hooks (the Context
	// Manager stores the captured stack trace here so tests and the
	// extractor can read it back). Guarded by mu: hooks run on whatever
	// goroutine called Connect, readers can be anywhere.
	ctx any
}

// NewJavaSocket mirrors `new java.net.Socket()`: no OS socket yet.
func (st *Stack) NewJavaSocket(ownerUID int) *JavaSocket {
	return &JavaSocket{stack: st, fd: -1, proto: ipv4.ProtoTCP, OwnerUID: ownerUID}
}

// NewDatagramSocket mirrors `new java.net.DatagramSocket()` connected
// usage: a UDP socket with the same lazy creation and hook semantics.
func (st *Stack) NewDatagramSocket(ownerUID int) *JavaSocket {
	return &JavaSocket{stack: st, fd: -1, proto: ipv4.ProtoUDP, OwnerUID: ownerUID}
}

// SetContext attaches opaque per-socket context. The publication is
// synchronized on the socket's own mutex, so a hook writing from the
// connect path never races a reader on another goroutine.
func (s *JavaSocket) SetContext(v any) {
	s.mu.Lock()
	s.ctx = v
	s.mu.Unlock()
}

// Context returns the context attached by SetContext (nil before any).
func (s *JavaSocket) Context() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctx
}

// FD returns the OS file descriptor, or -1 before the lazy socket call.
func (s *JavaSocket) FD() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fd
}

// Connected reports whether Connect succeeded.
func (s *JavaSocket) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected
}

// Remote returns the connected peer.
func (s *JavaSocket) Remote() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote
}

// Local returns the bound local address/port.
func (s *JavaSocket) Local() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local
}

// Connect implements java.net.Socket.connect: it lazily issues the
// socket(2) syscall, then connect(2), then fires the registered
// post-connect hooks (Xposed transfers control to the Context Manager
// here; paper Fig. 2 step 1).
func (s *JavaSocket) Connect(remote netip.AddrPort) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.connected {
		s.mu.Unlock()
		return kernel.ErrIsConnected
	}
	if s.fd < 0 {
		s.fd = s.stack.kern.Socket(s.OwnerUID, s.proto)
	}
	local := netip.AddrPortFrom(s.stack.localAddr, s.stack.allocPort())
	if err := s.stack.kern.Connect(s.fd, local, remote); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("netstack: connect: %w", err)
	}
	s.local = local
	s.remote = remote
	s.connected = true
	s.mu.Unlock()

	for _, h := range s.stack.snapshotHooks() {
		h(s)
	}
	return nil
}

// Handshake emits the connection-opening SYN for a connected TCP socket
// (tagged — the hooks have already run by the time Connect returns). It
// returns (nil, nil) for UDP sockets and on kernels in legacy RawPayloads
// mode, so callers can append the result unconditionally when non-nil.
func (s *JavaSocket) Handshake() (*ipv4.Packet, error) {
	fd, err := s.liveFD()
	if err != nil {
		return nil, err
	}
	return s.stack.kern.Handshake(fd)
}

// Finish emits the connection-closing FIN for a connected TCP socket; the
// caller still Closes the socket afterwards. Like Handshake it returns
// (nil, nil) when there is nothing to emit.
func (s *JavaSocket) Finish() (*ipv4.Packet, error) {
	fd, err := s.liveFD()
	if err != nil {
		return nil, err
	}
	return s.stack.kern.Shutdown(fd)
}

func (s *JavaSocket) liveFD() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return -1, ErrClosed
	}
	if !s.connected {
		return -1, ErrNotConnected
	}
	return s.fd, nil
}

// Send writes a payload to the connected socket; the kernel builds the
// packet (wrapping the payload in the socket's transport header and
// stamping the socket's IP options) and runs netfilter. The resulting
// wire packet is returned (nil if a filter dropped it).
func (s *JavaSocket) Send(payload []byte) (*ipv4.Packet, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if !s.connected {
		s.mu.Unlock()
		return nil, ErrNotConnected
	}
	fd := s.fd
	s.mu.Unlock()
	return s.stack.kern.Send(fd, payload)
}

// Close implements java.net.Socket.close.
func (s *JavaSocket) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	if s.fd >= 0 {
		return s.stack.kern.Close(s.fd)
	}
	return nil
}
