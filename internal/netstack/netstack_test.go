package netstack

import (
	"errors"
	"net/netip"
	"testing"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
)

func newStack() *Stack {
	k := kernel.New(kernel.Config{AllowUnprivilegedIPOptions: true})
	return NewStack(k, netip.MustParseAddr("10.0.0.5"))
}

func remoteAP() netip.AddrPort {
	return netip.AddrPortFrom(netip.MustParseAddr("93.184.216.34"), 80)
}

func TestLazySocketCreation(t *testing.T) {
	st := newStack()
	s := st.NewJavaSocket(10001)
	// Mirrors Java: constructing the socket object does not call socket(2).
	if s.FD() != -1 {
		t.Fatalf("fd = %d before connect, want -1 (lazy init)", s.FD())
	}
	if got := st.Kernel().Stats().SocketCalls; got != 0 {
		t.Fatalf("socket(2) called %d times before connect", got)
	}
	if err := s.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	if s.FD() < 0 {
		t.Fatal("fd not allocated on connect")
	}
	if got := st.Kernel().Stats().SocketCalls; got != 1 {
		t.Fatalf("socket(2) called %d times, want exactly 1", got)
	}
	if !s.Connected() {
		t.Fatal("not connected")
	}
	if s.Remote() != remoteAP() {
		t.Fatal("remote wrong")
	}
	if s.Local().Addr() != netip.MustParseAddr("10.0.0.5") {
		t.Fatal("local address wrong")
	}
}

func TestConnectHookFiresAfterConnection(t *testing.T) {
	st := newStack()
	var hookedFD int
	var wasConnected bool
	st.RegisterConnectHook(func(sock *JavaSocket) {
		hookedFD = sock.FD()
		wasConnected = sock.Connected()
		sock.SetContext("context-attached")
	})
	s := st.NewJavaSocket(10001)
	if err := s.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	// Post-hook semantics: socket exists and is connected when hook runs.
	if hookedFD != s.FD() || !wasConnected {
		t.Fatalf("hook saw fd=%d connected=%v", hookedFD, wasConnected)
	}
	if s.Context() != "context-attached" {
		t.Fatal("hook context lost")
	}
}

func TestHookCanSetIPOptions(t *testing.T) {
	st := newStack()
	st.RegisterConnectHook(func(sock *JavaSocket) {
		err := st.Kernel().SetIPOptions(sock.FD(), 0, []ipv4.Option{
			{Type: ipv4.OptSecurity, Data: []byte{0xde, 0xad}},
		})
		if err != nil {
			t.Errorf("hook setsockopt: %v", err)
		}
	})
	s := st.NewJavaSocket(10001)
	if err := s.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	pkt, err := s.Send([]byte("GET / HTTP/1.1\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := pkt.Header.FindOption(ipv4.OptSecurity)
	if !ok || opt.Data[0] != 0xde {
		t.Fatal("tag not stamped on packet")
	}
}

func TestSendErrors(t *testing.T) {
	st := newStack()
	s := st.NewJavaSocket(10001)
	if _, err := s.Send([]byte("x")); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("send before connect: %v", err)
	}
	if err := s.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if err := s.Connect(remoteAP()); !errors.Is(err, ErrClosed) {
		t.Fatalf("connect after close: %v", err)
	}
}

func TestDoubleConnect(t *testing.T) {
	st := newStack()
	s := st.NewJavaSocket(10001)
	if err := s.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(remoteAP()); !errors.Is(err, kernel.ErrIsConnected) {
		t.Fatalf("double connect: %v", err)
	}
}

func TestCloseBeforeConnectIsCheap(t *testing.T) {
	st := newStack()
	s := st.NewJavaSocket(10001)
	if err := s.Close(); err != nil {
		t.Fatalf("close of never-connected socket: %v", err)
	}
	if got := st.Kernel().Stats().SocketCalls; got != 0 {
		t.Fatalf("closing an unconnected Java socket made %d syscalls", got)
	}
}

func TestEphemeralPortsAdvance(t *testing.T) {
	st := newStack()
	a := st.NewJavaSocket(10001)
	b := st.NewJavaSocket(10001)
	if err := a.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	if a.Local().Port() == b.Local().Port() {
		t.Fatal("two live sockets share an ephemeral port")
	}
}

func TestSocketReuseKeepsOneContext(t *testing.T) {
	// Paper §VII "Socket reuse": all packets on one socket carry the stack
	// trace captured at connect time; reusing the socket for a different
	// purpose cannot change the tag without reconnecting.
	st := newStack()
	calls := 0
	st.RegisterConnectHook(func(sock *JavaSocket) {
		calls++
		_ = st.Kernel().SetIPOptions(sock.FD(), 0, []ipv4.Option{
			{Type: ipv4.OptSecurity, Data: []byte{byte(calls)}},
		})
	})
	s := st.NewJavaSocket(10001)
	if err := s.Connect(remoteAP()); err != nil {
		t.Fatal(err)
	}
	p1, _ := s.Send([]byte("first purpose"))
	p2, _ := s.Send([]byte("second purpose"))
	o1, _ := p1.Header.FindOption(ipv4.OptSecurity)
	o2, _ := p2.Header.FindOption(ipv4.OptSecurity)
	if o1.Data[0] != o2.Data[0] {
		t.Fatal("context changed across sends on one socket")
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times for one socket, want 1", calls)
	}
}
