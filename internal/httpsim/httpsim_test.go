package httpsim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method:    "GET",
		Path:      "/index.html",
		Host:      "files.corp.example",
		KeepAlive: true,
		Body:      nil,
	}
	got, err := ParseRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Path != "/index.html" || !got.KeepAlive || got.Host != "files.corp.example" {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.Body) != 0 {
		t.Fatalf("phantom body: %q", got.Body)
	}
}

func TestRequestWithBody(t *testing.T) {
	body := bytes.Repeat([]byte{0x42}, 1000)
	req := &Request{Method: "PUT", Path: "/upload/doc.pdf", Body: body}
	got, err := ParseRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "PUT" || !bytes.Equal(got.Body, body) {
		t.Fatal("body lost in round trip")
	}
	if got.KeepAlive {
		t.Fatal("keep-alive default must be false")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{Status: 200, KeepAlive: true, Body: StaticPage()}
	got, err := ParseResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != 200 || !got.KeepAlive || !bytes.Equal(got.Body, StaticPage()) {
		t.Fatal("response round trip failed")
	}
	for _, code := range []int{201, 403, 404, 599} {
		r := &Response{Status: code}
		back, err := ParseResponse(r.Marshal())
		if err != nil || back.Status != code {
			t.Fatalf("status %d round trip: %v", code, err)
		}
	}
}

func TestStaticPageExactly297Bytes(t *testing.T) {
	page := StaticPage()
	if len(page) != StaticPageSize || StaticPageSize != 297 {
		t.Fatalf("static page is %d bytes, want 297", len(page))
	}
	if !bytes.Equal(page, StaticPage()) {
		t.Fatal("static page not deterministic")
	}
}

func TestParseErrors(t *testing.T) {
	badReqs := [][]byte{
		nil,
		[]byte("GARBAGE"),
		[]byte("GET /\r\n\r\n"), // missing HTTP version
		[]byte("GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n"),           // bad header
		[]byte("GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"),      // negative length
		[]byte("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"), // truncated body
		[]byte("GET / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n"),     // non-numeric length
	}
	for _, raw := range badReqs {
		if _, err := ParseRequest(raw); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseRequest(%q) err = %v, want ErrMalformed", raw, err)
		}
	}
	badResps := [][]byte{
		nil,
		[]byte("HTTP/1.1\r\n\r\n"),        // no status
		[]byte("HTTP/1.1 abc OK\r\n\r\n"), // non-numeric status
		[]byte("NOTHTTP 200 OK\r\n\r\n"),  // bad prefix
	}
	for _, raw := range badResps {
		if _, err := ParseResponse(raw); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseResponse(%q) err = %v, want ErrMalformed", raw, err)
		}
	}
}

func TestStaticHandler(t *testing.T) {
	h := StaticHandler([]byte("hello"))
	resp := h(&Request{Method: "GET", Path: "/", KeepAlive: true})
	if resp.Status != 200 || string(resp.Body) != "hello" || !resp.KeepAlive {
		t.Fatalf("resp = %+v", resp)
	}
	resp = h(&Request{Method: "GET", Path: "/"})
	if resp.KeepAlive {
		t.Fatal("handler must mirror keep-alive=false")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(pathSeed uint16, keep bool, body []byte) bool {
		req := &Request{
			Method:    "POST",
			Path:      "/p" + itoa(int(pathSeed)),
			Host:      "h.example",
			KeepAlive: keep,
			Body:      body,
		}
		got, err := ParseRequest(req.Marshal())
		if err != nil {
			return false
		}
		return got.Path == req.Path && got.KeepAlive == keep && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ParseRequest(data)
		_, _ = ParseResponse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
