// Package httpsim implements a minimal HTTP/1.1-style request/response
// wire format over simulated socket payloads. It supports exactly what the
// paper's workloads need: GET for downloads and the 297-byte static page of
// the stress test (§VI-D), PUT/POST for uploads, keep-alive connections for
// the amortization argument, and content sizing for the flow-size analysis
// (§VII).
package httpsim

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Request is a parsed HTTP request.
type Request struct {
	Method    string
	Path      string
	Host      string
	KeepAlive bool
	Body      []byte
}

// Response is a parsed HTTP response.
type Response struct {
	Status    int
	KeepAlive bool
	Body      []byte
}

// Errors produced by parsing.
var (
	ErrMalformed = errors.New("httpsim: malformed message")
)

// MarshalRequest renders the request in HTTP/1.1 wire form.
func (r *Request) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.Path)
	if r.Host != "" {
		fmt.Fprintf(&b, "Host: %s\r\n", r.Host)
	}
	if r.KeepAlive {
		b.WriteString("Connection: keep-alive\r\n")
	} else {
		b.WriteString("Connection: close\r\n")
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

// ParseRequest parses a request from wire form.
func ParseRequest(data []byte) (*Request, error) {
	rd := bufio.NewReader(bytes.NewReader(data))
	line, err := rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: request line: %v", ErrMalformed, err)
	}
	parts := strings.Fields(strings.TrimSpace(line))
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Path: parts[1]}
	clen, keep, err := parseHeaders(rd)
	if err != nil {
		return nil, err
	}
	req.KeepAlive = keep
	req.Body, err = readBody(rd, clen)
	if err != nil {
		return nil, err
	}
	req.Host = hostFromHeaders(data)
	return req, nil
}

func hostFromHeaders(data []byte) string {
	for _, line := range strings.Split(string(data), "\r\n") {
		if strings.HasPrefix(strings.ToLower(line), "host:") {
			return strings.TrimSpace(line[len("host:"):])
		}
		if line == "" {
			break
		}
	}
	return ""
}

// Marshal renders the response in HTTP/1.1 wire form.
func (r *Response) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, statusText(r.Status))
	if r.KeepAlive {
		b.WriteString("Connection: keep-alive\r\n")
	} else {
		b.WriteString("Connection: close\r\n")
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

// ParseResponse parses a response from wire form.
func ParseResponse(data []byte) (*Response, error) {
	rd := bufio.NewReader(bytes.NewReader(data))
	line, err := rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: status line: %v", ErrMalformed, err)
	}
	parts := strings.Fields(strings.TrimSpace(line))
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	resp := &Response{Status: status}
	clen, keep, err := parseHeaders(rd)
	if err != nil {
		return nil, err
	}
	resp.KeepAlive = keep
	resp.Body, err = readBody(rd, clen)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func parseHeaders(rd *bufio.Reader) (contentLen int, keepAlive bool, err error) {
	contentLen = -1
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return 0, false, fmt.Errorf("%w: headers: %v", ErrMalformed, err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return 0, false, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		val := strings.TrimSpace(line[colon+1:])
		switch key {
		case "content-length":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, false, fmt.Errorf("%w: content-length %q", ErrMalformed, val)
			}
			contentLen = n
		case "connection":
			keepAlive = strings.EqualFold(val, "keep-alive")
		}
	}
	if contentLen < 0 {
		contentLen = 0
	}
	return contentLen, keepAlive, nil
}

func readBody(rd *bufio.Reader, n int) ([]byte, error) {
	body := make([]byte, n)
	if _, err := io.ReadFull(rd, body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrMalformed, err)
	}
	return body, nil
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	default:
		return "Status"
	}
}

// StaticPageSize is the size of the stress-test page: the paper serves a
// static 297-byte HTML page from a local server (§VI-D).
const StaticPageSize = 297

// StaticPage returns the deterministic 297-byte HTML document used by the
// Fig. 4 stress test.
func StaticPage() []byte {
	const prefix = "<!DOCTYPE html><html><head><title>bp-stress</title></head><body><p>"
	const suffix = "</p></body></html>"
	fill := StaticPageSize - len(prefix) - len(suffix)
	var b bytes.Buffer
	b.Grow(StaticPageSize)
	b.WriteString(prefix)
	for i := 0; i < fill; i++ {
		b.WriteByte(byte('a' + i%26))
	}
	b.WriteString(suffix)
	return b.Bytes()
}

// Handler produces a response for a request (server-side application
// logic).
type Handler func(req *Request) *Response

// StaticHandler always serves the given body with 200 OK, honouring the
// request's keep-alive preference.
func StaticHandler(body []byte) Handler {
	return func(req *Request) *Response {
		return &Response{Status: 200, KeepAlive: req.KeepAlive, Body: body}
	}
}
