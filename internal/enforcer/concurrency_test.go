package enforcer

import (
	"sync"
	"testing"

	"borderpatrol/internal/policy"
)

// TestConcurrentProcess drives the enforcer from many goroutines under
// -race: atomic counters and the lock-free decode path must neither race
// nor lose packets, and central reconfiguration may run concurrently.
func TestConcurrentProcess(t *testing.T) {
	e, db, apk := newEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)

	tracker := mkPacket(t, apk, db, "beacon", "download")
	clean := mkPacket(t, apk, db, "download")

	const goroutines = 8
	const perG = 500

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Engine().SetRules([]policy.Rule{
				{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"},
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if res := e.Process(tracker); res.Verdict != policy.VerdictDrop || res.Cause != DropPolicy {
					t.Errorf("tracker packet admitted: %+v", res)
					return
				}
				if res := e.Process(clean); res.Verdict != policy.VerdictAllow {
					t.Errorf("clean packet dropped: %+v", res)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone

	st := e.Stats()
	if st.Processed != goroutines*perG*2 {
		t.Fatalf("processed = %d, want %d", st.Processed, goroutines*perG*2)
	}
	if st.Accepted != goroutines*perG || st.Dropped != goroutines*perG {
		t.Fatalf("accepted/dropped = %d/%d, want %d each", st.Accepted, st.Dropped, goroutines*perG)
	}
	if st.DroppedByCause[DropPolicy] != goroutines*perG {
		t.Fatalf("policy drops = %d, want %d", st.DroppedByCause[DropPolicy], goroutines*perG)
	}
}
