package enforcer

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/devctx"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
	"borderpatrol/internal/transport"
)

// benchEnforcer builds an enforcer against the §VI-B1 validation-scale
// rule set (1,050 library deny rules), optionally with a flow cache.
func benchEnforcer(b *testing.B, cached bool) (*Enforcer, *ipv4.Packet) {
	b.Helper()
	apk := testAPK()
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	rules := make([]policy.Rule, 0, 1050)
	for i := 0; i < 1050; i++ {
		rules = append(rules, policy.Rule{
			Action: policy.Deny,
			Level:  policy.LevelLibrary,
			Target: fmt.Sprintf("com/blocked/lib%04d", i),
		})
	}
	eng, err := policy.NewEngine(rules, policy.VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{}
	if cached {
		cfg.Flows = NewFlowCache(flowtable.Config{Capacity: 65536})
	}
	e := New(cfg, db, eng)

	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: []uint32{0, 1}}
	payload, err := tg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	// The HTTP request rides a real TCP segment, so the measured hit path
	// includes the transport peek that completes the 5-tuple flow key.
	seg := transport.TCPSegment{
		SrcPort: 40001, DstPort: 443, Seq: 1,
		Flags: transport.FlagPSH | transport.FlagACK, Window: 65535,
		Payload: []byte("POST /x HTTP/1.1\r\n\r\n"),
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.MustParseAddr("93.184.216.34"),
		},
		Payload: seg.Marshal(),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	return e, pkt
}

// BenchmarkProcessFlowHit is the acceptance benchmark for the flow table:
// every iteration after the first is a cache hit, so the per-packet cost
// is one shard probe — no tag decode, no stack decode, no Evaluate.
func BenchmarkProcessFlowHit(b *testing.B) {
	e, pkt := benchEnforcer(b, true)
	e.Process(pkt) // warm the flow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}

// BenchmarkProcessFlowHitParallel drives the hot flow from every core.
func BenchmarkProcessFlowHitParallel(b *testing.B) {
	e, pkt := benchEnforcer(b, true)
	e.Process(pkt)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
				b.Error("benign packet dropped")
				return
			}
		}
	})
}

// BenchmarkProcessFlowHitContextual is the cache-hit path with the
// contextual dimension fully armed: risk rules loaded, a device-context
// source wired, and the source holding context for the bench device. The
// per-packet cost over BenchmarkProcessFlowHit is one extra atomic load
// (the context generation folded into the cache key) — context itself was
// evaluated once, at flow admission, and lives in the cached verdict.
func BenchmarkProcessFlowHitContextual(b *testing.B) {
	e, pkt := benchEnforcer(b, true)
	src := devctx.NewSource(nil)
	src.SetNetwork(pkt.Header.Src, policy.NetTrusted)
	e.ctxSrc = src
	rules := e.engine.Rules()
	ctxRules, err := policy.ParsePolicyString(`
{[risk][network]["unknown"][60]}
{[risk][network]["trusted"][-30]}
{[risk][time]["22:00-06:00"][35]}
{[risk][travel]["impossible"][100]}
{[threshold][warn][40]}
{[threshold][block][100]}
`)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.engine.SetRules(append(rules, ctxRules...)); err != nil {
		b.Fatal(err)
	}
	e.Process(pkt) // warm the flow (SYN-time context evaluation happens here)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}

// BenchmarkProcessFlowMiss forces a distinct flow every iteration (the
// destination address rotates) so each packet pays the full pipeline plus
// the cache fill — the worst case for the flow table.
func BenchmarkProcessFlowMiss(b *testing.B) {
	e, pkt := benchEnforcer(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var a [4]byte
		binary.BigEndian.PutUint32(a[:], uint32(i))
		pkt.Header.Dst = netip.AddrFrom4(a)
		if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}

// BenchmarkProcessNoCache is the PR 1 reference path (miss-path cost
// without any flow table), for the before/after comparison.
func BenchmarkProcessNoCache(b *testing.B) {
	e, pkt := benchEnforcer(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}

// BenchmarkProcessBatchKeepAlive enforces 64-packet batches of one flow —
// the §VI-D keep-alive train — through the batch memo. Reported ns/op is
// per packet.
func BenchmarkProcessBatchKeepAlive(b *testing.B) {
	e, pkt := benchEnforcer(b, true)
	batch := make([]*ipv4.Packet, 64)
	for i := range batch {
		batch[i] = pkt
	}
	var out []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		out = e.ProcessBatch(batch, out)
		if out[0].Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}

// BenchmarkProcessBatchMixedFlows interleaves eight flows within each
// batch, so the memo misses and the flow table carries the load.
func BenchmarkProcessBatchMixedFlows(b *testing.B) {
	e, base := benchEnforcer(b, true)
	batch := make([]*ipv4.Packet, 64)
	for i := range batch {
		p := base.Clone()
		var a [4]byte
		binary.BigEndian.PutUint32(a[:], uint32(i%8))
		p.Header.Dst = netip.AddrFrom4(a)
		batch[i] = p
	}
	var out []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		out = e.ProcessBatch(batch, out)
		if out[0].Verdict != policy.VerdictAllow {
			b.Fatal("benign packet dropped")
		}
	}
}
