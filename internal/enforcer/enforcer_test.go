package enforcer

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
)

func testAPK() *dex.APK {
	return &dex.APK{
		PackageName: "com.corp.files",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{
				{
					Package: "com/corp/files",
					Name:    "SyncEngine",
					Methods: []dex.MethodDef{
						{Name: "download", Proto: "()V", File: "S.java", StartLine: 10, EndLine: 20},
						{Name: "upload", Proto: "()V", File: "S.java", StartLine: 30, EndLine: 40},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []dex.MethodDef{
						{Name: "beacon", Proto: "()V", File: "A.java", StartLine: 5, EndLine: 15},
					},
				},
			},
		}},
	}
}

func mkPacket(t *testing.T, apk *dex.APK, db *analyzer.Database, sigNames ...string) *ipv4.Packet {
	t.Helper()
	var indexes []uint32
	for _, name := range sigNames {
		found := false
		entry, _ := db.LookupTruncated(apk.Truncated())
		for i, raw := range entry.Signatures {
			sig, err := dex.ParseSignature(raw)
			if err != nil {
				t.Fatal(err)
			}
			if sig.Name == name {
				indexes = append(indexes, uint32(i))
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("signature %q not in db", name)
		}
	}
	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: indexes}
	payload, err := tg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.0.0.5"),
			Dst:      netip.MustParseAddr("93.184.216.34"),
		},
		Payload: []byte("POST /x HTTP/1.1\r\n\r\n"),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	return pkt
}

func newEnforcer(t *testing.T, cfg Config, rules []policy.Rule, def policy.Verdict) (*Enforcer, *analyzer.Database, *dex.APK) {
	t.Helper()
	apk := testAPK()
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	eng, err := policy.NewEngine(rules, def)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, db, eng), db, apk
}

func TestPolicyDenyDropsTrackerStack(t *testing.T) {
	e, db, apk := newEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)

	// Tracker frame present: drop.
	res := e.Process(mkPacket(t, apk, db, "beacon", "download"))
	if res.Verdict != policy.VerdictDrop || res.Cause != DropPolicy {
		t.Fatalf("res = %+v", res)
	}
	if res.Decision == nil || res.Decision.Rule == nil {
		t.Fatal("decision not attached")
	}
	// Clean stack: allow.
	res = e.Process(mkPacket(t, apk, db, "download"))
	if res.Verdict != policy.VerdictAllow {
		t.Fatalf("clean stack dropped: %+v", res)
	}
	if len(res.Stack) != 1 || res.Stack[0].Name != "download" {
		t.Fatalf("decoded stack = %v", res.Stack)
	}
	st := e.Stats()
	if st.Processed != 2 || st.Accepted != 1 || st.Dropped != 1 || st.DroppedByCause[DropPolicy] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUntaggedPacketsDroppedByDefault(t *testing.T) {
	e, _, _ := newEnforcer(t, Config{}, nil, policy.VerdictAllow)
	pkt := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.7"),
		Dst: netip.MustParseAddr("8.8.8.8"),
	}}
	res := e.Process(pkt)
	if res.Verdict != policy.VerdictDrop || res.Cause != DropUntagged {
		t.Fatalf("res = %+v", res)
	}
	// Staged rollout mode admits them.
	e2, _, _ := newEnforcer(t, Config{AllowUntagged: true}, nil, policy.VerdictAllow)
	if res := e2.Process(pkt); res.Verdict != policy.VerdictAllow {
		t.Fatalf("AllowUntagged ignored: %+v", res)
	}
}

func TestUnknownAppDropped(t *testing.T) {
	e, _, _ := newEnforcer(t, Config{}, nil, policy.VerdictAllow)
	// A tag from an app that was never analyzed.
	var h dex.TruncatedHash
	for i := range h {
		h[i] = 0xee
	}
	tg := tag.Tag{AppHash: h, Indexes: []uint32{0}}
	payload, _ := tg.Encode()
	pkt := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.5"),
		Dst: netip.MustParseAddr("8.8.8.8"),
	}}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	res := e.Process(pkt)
	if res.Verdict != policy.VerdictDrop || res.Cause != DropUnknownApp {
		t.Fatalf("res = %+v", res)
	}
	// Permissive mode.
	e2, _, _ := newEnforcer(t, Config{AllowUnknownApps: true}, nil, policy.VerdictAllow)
	if res := e2.Process(pkt); res.Verdict != policy.VerdictAllow {
		t.Fatalf("AllowUnknownApps ignored: %+v", res)
	}
}

func TestMalformedTagDropped(t *testing.T) {
	e, _, _ := newEnforcer(t, Config{}, nil, policy.VerdictAllow)
	pkt := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.5"),
		Dst: netip.MustParseAddr("8.8.8.8"),
	}}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{0xff, 0x01}})
	res := e.Process(pkt)
	if res.Verdict != policy.VerdictDrop || res.Cause != DropMalformedTag {
		t.Fatalf("res = %+v", res)
	}
}

func TestBadIndexDropped(t *testing.T) {
	e, _, apk := newEnforcer(t, Config{}, nil, policy.VerdictAllow)
	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: []uint32{9999}}
	payload, _ := tg.Encode()
	pkt := &ipv4.Packet{Header: ipv4.Header{
		TTL: 64, Protocol: ipv4.ProtoTCP,
		Src: netip.MustParseAddr("10.0.0.5"),
		Dst: netip.MustParseAddr("8.8.8.8"),
	}}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	res := e.Process(pkt)
	if res.Verdict != policy.VerdictDrop || res.Cause != DropBadIndex {
		t.Fatalf("res = %+v", res)
	}
}

func TestMethodLevelSelectivity(t *testing.T) {
	// The headline capability: same app, same destination — upload dropped,
	// download allowed, purely on the method in the stack.
	uploadSig := "Lcom/corp/files/SyncEngine;->upload()V"
	e, db, apk := newEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelMethod, Target: uploadSig}},
		policy.VerdictAllow)

	if res := e.Process(mkPacket(t, apk, db, "upload")); res.Verdict != policy.VerdictDrop {
		t.Fatalf("upload not dropped: %+v", res)
	}
	if res := e.Process(mkPacket(t, apk, db, "download")); res.Verdict != policy.VerdictAllow {
		t.Fatalf("download dropped: %+v", res)
	}
}

func TestWhitelistByHash(t *testing.T) {
	apk := testAPK()
	rules := []policy.Rule{{Action: policy.Allow, Level: policy.LevelHash, Target: apk.Truncated().String()}}
	e, db, _ := newEnforcer(t, Config{}, rules, policy.VerdictDrop)
	if res := e.Process(mkPacket(t, apk, db, "download")); res.Verdict != policy.VerdictAllow {
		t.Fatalf("whitelisted app dropped: %+v", res)
	}
}

func TestDropCauseStrings(t *testing.T) {
	for c, want := range map[DropCause]string{
		DropNone: "accepted", DropUntagged: "untagged", DropMalformedTag: "malformed-tag",
		DropUnknownApp: "unknown-app", DropBadIndex: "bad-index", DropPolicy: "policy",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
