package enforcer

import (
	"testing"

	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/transport"
)

// withTCP wraps a legacy test packet's payload in a TCP segment with the
// given source port (destination 443), turning it into the transport-era
// wire shape.
func withTCP(pkt *ipv4.Packet, srcPort uint16) *ipv4.Packet {
	out := pkt.Clone()
	seg := transport.TCPSegment{
		SrcPort: srcPort, DstPort: 443, Seq: 1,
		Flags: transport.FlagPSH | transport.FlagACK, Window: 65535,
		Payload: pkt.Payload,
	}
	out.Payload = seg.Marshal()
	return out
}

// TestTCPPortsSeparateFlows: two connections between the same host pair
// with the same tag — two apps, or two sockets of one app — get distinct
// flow entries now that the key carries real ports.
func TestTCPPortsSeparateFlows(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{}, nil, policy.VerdictAllow)
	base := mkPacket(t, apk, db, "download")

	connA := withTCP(base, 40001)
	connB := withTCP(base, 40002)

	if res := e.Process(connA); res.Verdict != policy.VerdictAllow {
		t.Fatalf("connA: %+v", res)
	}
	if res := e.Process(connB); res.Verdict != policy.VerdictAllow {
		t.Fatalf("connB: %+v", res)
	}
	st := e.Stats()
	if st.Flow.Misses != 2 || st.Flow.Live != 2 {
		t.Fatalf("same-endpoint connections shared a flow entry: %+v", st.Flow)
	}
	// Repeats on each connection hit their own entry.
	e.Process(connA)
	e.Process(connB)
	if st := e.Stats(); st.Flow.Hits != 2 {
		t.Fatalf("flow hits = %d, want 2", st.Flow.Hits)
	}
}

// TestEndFlowTearsDownOnlyItsConnection: FIN-driven teardown keyed on the
// 5-tuple must not evict a sibling connection between the same hosts.
func TestEndFlowTearsDownOnlyItsConnection(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{}, nil, policy.VerdictAllow)
	base := mkPacket(t, apk, db, "download")
	connA := withTCP(base, 40001)
	connB := withTCP(base, 40002)
	e.Process(connA)
	e.Process(connB)

	if !e.EndFlow(connA) {
		t.Fatal("EndFlow missed connA")
	}
	st := e.Stats()
	if st.Flow.Live != 1 {
		t.Fatalf("live flows = %d after one teardown, want 1", st.Flow.Live)
	}
	// connB still hits; connA re-resolves.
	e.Process(connB)
	if st := e.Stats(); st.Flow.Hits != 1 {
		t.Fatalf("sibling connection lost its entry: %+v", st.Flow)
	}
}

// TestFragmentsNotKeyedByGarbagePorts: fragments of a tagged TCP packet
// all get verdicts (the copied tag decides them), but only the first
// fragment — the one actually carrying the transport header — may
// contribute ports to its flow key. Non-first fragments key with zero
// ports rather than garbage payload bytes.
func TestFragmentsNotKeyedByGarbagePorts(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{}, nil, policy.VerdictAllow)
	base := mkPacket(t, apk, db, "download")
	full := withTCP(base, 40001)
	// Grow the payload so fragmentation yields several pieces.
	seg, err := transport.ParseTCP(full.Payload)
	if err != nil {
		t.Fatal(err)
	}
	seg.Payload = append(seg.Payload, make([]byte, 4000)...)
	full.Payload = seg.Marshal()

	frags, err := ipv4.Fragment(full, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("got %d fragments", len(frags))
	}
	for i, f := range frags {
		if res := e.Process(f); res.Verdict != policy.VerdictAllow {
			t.Fatalf("fragment %d dropped: %+v", i, res)
		}
	}
	// Two flow entries: the first fragment's ported key, and one shared
	// port-less key for every non-first fragment (they must all collapse
	// onto the same zero-port key — garbage ports would scatter them).
	st := e.Stats()
	if st.Flow.Live != 2 {
		t.Fatalf("live flows = %d, want 2 (ported + port-less)", st.Flow.Live)
	}
	wantHits := uint64(len(frags) - 2) // non-first fragments after the first miss
	if st.Flow.Hits != wantHits {
		t.Fatalf("hits = %d, want %d (non-first fragments share one key)", st.Flow.Hits, wantHits)
	}
}

// TestLegacyPayloadKeysWithZeroPorts: plain-HTTP packets (no transport
// header) keep the PR 2 keying — ports zero, one flow per (endpoints,
// proto, tag).
func TestLegacyPayloadKeysWithZeroPorts(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{}, nil, policy.VerdictAllow)
	legacy := mkPacket(t, apk, db, "download") // raw HTTP payload
	e.Process(legacy)
	e.Process(legacy)
	st := e.Stats()
	if st.Flow.Misses != 1 || st.Flow.Hits != 1 || st.Flow.Live != 1 {
		t.Fatalf("legacy keying changed: %+v", st.Flow)
	}
}
