package enforcer

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"borderpatrol/internal/devctx"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/policy"
)

// testClock is a settable virtual clock for time-of-day predicates.
type testClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *testClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) set(d time.Duration) {
	c.mu.Lock()
	c.now = d
	c.mu.Unlock()
}

// contextRules parses a contextual policy document for enforcer tests.
func contextRules(t *testing.T, doc string) []policy.Rule {
	t.Helper()
	rules, err := policy.ParsePolicyString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

var deviceAddr = netip.MustParseAddr("10.0.0.5")

func TestContextEvaluatedOncePerFlowAndCached(t *testing.T) {
	src := devctx.NewSource(nil)
	clk := &testClock{}
	cfg := Config{
		Flows:   NewFlowCache(flowtable.Config{Capacity: 1024}),
		Context: src,
		Clock:   clk,
	}
	e, db, apk := newEnforcer(t, cfg, contextRules(t, `
{[risk][network]["unknown"][60]}
{[threshold][warn][40]}
{[threshold][block][100]}
`), policy.VerdictAllow)

	// Unknown device on an unknown network: warn (60 ≥ 40, < 100).
	pkt := mkPacket(t, apk, db, "download")
	res := e.Process(pkt)
	if res.Verdict != policy.VerdictAllow || res.Decision == nil || !res.Decision.RiskWarn {
		t.Fatalf("first packet: %+v", res)
	}
	if res.Decision.RiskScore != 60 {
		t.Fatalf("risk score = %d", res.Decision.RiskScore)
	}

	// Second packet of the same flow: served from the cache, same decision
	// pointer — context was evaluated exactly once.
	res2 := e.Process(pkt)
	if res2.Decision != res.Decision {
		t.Fatal("cache hit rebuilt the decision (context re-evaluated)")
	}
	st := e.Stats()
	if st.Flow.Hits != 1 || st.Flow.Misses != 1 {
		t.Fatalf("flow stats = %+v", st.Flow)
	}
	if got := e.Engine().Stats().RiskEvaluations; got != 1 {
		t.Fatalf("risk evaluations = %d, want 1 (once per flow)", got)
	}
}

func TestContextFlipInvalidatesCachedVerdict(t *testing.T) {
	src := devctx.NewSource(nil)
	src.SetNetwork(deviceAddr, policy.NetTrusted)
	cfg := Config{
		Flows:   NewFlowCache(flowtable.Config{Capacity: 1024}),
		Context: src,
	}
	e, db, apk := newEnforcer(t, cfg, contextRules(t, `
{[risk][network]["unknown"][100]}
{[risk][network]["trusted"][-50]}
{[threshold][block][100]}
`), policy.VerdictAllow)

	pkt := mkPacket(t, apk, db, "download")
	if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
		t.Fatalf("trusted flow dropped: %+v", res)
	}
	if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
		t.Fatalf("cached trusted flow dropped: %+v", res)
	}

	// The device roams to an unknown network: the generation bump must
	// invalidate the cached allow on the very next packet.
	src.SetNetwork(deviceAddr, policy.NetUnknown)
	res := e.Process(pkt)
	if res.Verdict != policy.VerdictDrop || res.Cause != DropRisk {
		t.Fatalf("post-flip packet: %+v", res)
	}
	if !res.Decision.RiskBlocked || res.Decision.RiskScore != 100 {
		t.Fatalf("post-flip decision: %+v", res.Decision)
	}
	if st := e.Stats(); st.Flow.StaleDrops == 0 {
		t.Fatalf("no stale drops after context flip: %+v", st.Flow)
	}
	if st := e.Stats(); st.DroppedByCause[DropRisk] != 1 {
		t.Fatalf("drop causes = %+v", st.DroppedByCause)
	}

	// Roaming back re-admits the flow.
	src.SetNetwork(deviceAddr, policy.NetTrusted)
	if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
		t.Fatalf("re-trusted flow dropped: %+v", res)
	}
}

func TestTimeWindowViaVirtualClock(t *testing.T) {
	src := devctx.NewSource(nil)
	src.SetNetwork(deviceAddr, policy.NetTrusted)
	clk := &testClock{}
	cfg := Config{
		Flows:   NewFlowCache(flowtable.Config{Capacity: 1024}),
		Context: src,
		Clock:   clk,
	}
	e, db, apk := newEnforcer(t, cfg, contextRules(t, `
{[risk][time]["22:00-06:00"][100]}
{[threshold][block][100]}
`), policy.VerdictAllow)

	pkt := mkPacket(t, apk, db, "download")
	clk.set(14 * time.Hour) // Monday 14:00
	if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
		t.Fatalf("afternoon flow dropped: %+v", res)
	}
	// 23:00 the same virtual day. The clock is not part of the generation,
	// so the cached afternoon verdict is still served — end the flow to
	// force re-evaluation (the documented SYN-time model: a flow keeps the
	// context it was admitted under).
	clk.set(23 * time.Hour)
	e.EndFlow(pkt)
	if res := e.Process(pkt); res.Verdict != policy.VerdictDrop || res.Cause != DropRisk {
		t.Fatalf("night flow admitted: %+v", res)
	}
}

// TestRacedContextFlipNoStaleVerdicts is the acceptance-criterion race
// test: workers hammer Process on one flow while the device's network
// trust class flips underneath them. The generation-ordering contract
// (state published before the generation bump) means any evaluation that
// observed the post-flip generation must reflect the post-flip context —
// so, per worker, once a drop is observed no later packet may be allowed
// (an allow after a drop would be a stale-context verdict served under the
// new generation). Run under -race this also pins the Source's
// synchronization.
func TestRacedContextFlipNoStaleVerdicts(t *testing.T) {
	src := devctx.NewSource(nil)
	src.SetNetwork(deviceAddr, policy.NetTrusted)
	cfg := Config{
		Flows:   NewFlowCache(flowtable.Config{Capacity: 1024}),
		Context: src,
	}
	e, db, apk := newEnforcer(t, cfg, contextRules(t, `
{[risk][network]["unknown"][100]}
{[threshold][block][100]}
`), policy.VerdictAllow)
	pkt := mkPacket(t, apk, db, "download")

	if res := e.Process(pkt); res.Verdict != policy.VerdictAllow {
		t.Fatalf("pre-flip flow dropped: %+v", res)
	}

	const workers = 4
	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations [workers]int
		drops      [workers]int
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			dropped := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := e.Process(pkt)
				switch res.Verdict {
				case policy.VerdictDrop:
					dropped = true
					drops[w]++
				case policy.VerdictAllow:
					if dropped {
						violations[w]++ // stale allow after a new-gen drop
					}
				}
			}
		}()
	}

	// Let the workers soak the cache-hit path, then flip.
	time.Sleep(5 * time.Millisecond)
	src.SetNetwork(deviceAddr, policy.NetUnknown)
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	totalDrops := 0
	for w := 0; w < workers; w++ {
		if violations[w] != 0 {
			t.Fatalf("worker %d saw %d stale allows after observing the flip", w, violations[w])
		}
		totalDrops += drops[w]
	}
	if totalDrops == 0 {
		t.Fatal("no worker ever observed the flipped context")
	}
	// And the settled state must drop.
	if res := e.Process(pkt); res.Verdict != policy.VerdictDrop || res.Cause != DropRisk {
		t.Fatalf("settled post-flip verdict: %+v", res)
	}
}

func TestContextInactiveWithoutRiskRules(t *testing.T) {
	// A wired source with a call-stack-only policy must not score flows.
	src := devctx.NewSource(nil)
	cfg := Config{
		Flows:   NewFlowCache(flowtable.Config{Capacity: 1024}),
		Context: src,
	}
	e, db, apk := newEnforcer(t, cfg,
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)
	res := e.Process(mkPacket(t, apk, db, "download"))
	if res.Verdict != policy.VerdictAllow || (res.Decision != nil && res.Decision.RiskApplied) {
		t.Fatalf("risk applied without risk rules: %+v", res)
	}
	if got := e.Engine().Stats().RiskEvaluations; got != 0 {
		t.Fatalf("risk evaluations = %d", got)
	}
}
