// Package enforcer implements BorderPatrol's Policy Enforcer (paper
// §IV-A3, §V-C): the network-side component that inspects every packet
// leaving the BYOD perimeter in three stages — (i) extraction of the app
// hash and index sequence from IP_OPTIONS, (ii) decoding indexes back to
// method signatures through the Offline Analyzer's database, and
// (iii) enforcement of the configured policy rules.
//
// Per the paper's deployment discussion (§VII "Compatibility"), packets
// without a BorderPatrol tag are dropped by default: inside the perimeter
// every work-profile packet must originate from a socket the Context
// Manager controls, so untagged traffic is either a personal app that has
// no business on the corporate network or an evasion attempt (e.g. native
// sockets).
package enforcer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
)

// Config selects enforcer behaviour for edge cases.
type Config struct {
	// AllowUntagged admits packets without a BorderPatrol option instead of
	// dropping them (useful for staged rollouts; the paper's deployment
	// drops them).
	AllowUntagged bool
	// AllowUnknownApps admits tagged packets whose app hash is not in the
	// database. The default (false) drops them: an unprovisioned or
	// repackaged app must not exfiltrate just by being unknown.
	AllowUnknownApps bool
}

// DropCause classifies why the enforcer dropped a packet.
type DropCause int

// Drop causes.
const (
	// DropNone means the packet was accepted.
	DropNone DropCause = iota
	// DropUntagged is a packet without the BorderPatrol IP option.
	DropUntagged
	// DropMalformedTag is a tag that failed to decode.
	DropMalformedTag
	// DropUnknownApp is a tag whose app hash is not in the database.
	DropUnknownApp
	// DropBadIndex is a tag with an index outside the app's method table.
	DropBadIndex
	// DropPolicy is a packet denied by a policy rule (or default).
	DropPolicy

	// dropCauseCount sizes per-cause counters; keep it last so new causes
	// automatically grow the counter array.
	dropCauseCount
)

// String names the drop cause.
func (c DropCause) String() string {
	switch c {
	case DropNone:
		return "accepted"
	case DropUntagged:
		return "untagged"
	case DropMalformedTag:
		return "malformed-tag"
	case DropUnknownApp:
		return "unknown-app"
	case DropBadIndex:
		return "bad-index"
	case DropPolicy:
		return "policy"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// Result reports the enforcer's decision for one packet, with the decoded
// context for auditing and the Policy Extractor.
type Result struct {
	Verdict policy.Verdict
	Cause   DropCause
	// AppHash is the decoded app identity (zero when untagged).
	AppHash dex.TruncatedHash
	// Stack is the decoded stack trace (nil when undecodable).
	Stack []dex.Signature
	// Decision carries the policy engine's reasoning when it ran.
	Decision *policy.Decision
}

// Stats counts enforcement outcomes.
type Stats struct {
	Processed      uint64
	Accepted       uint64
	Dropped        uint64
	DroppedByCause map[DropCause]uint64
}

// Enforcer evaluates packets against a policy using a signature database.
// It is safe for concurrent use and scales across cores: counters are
// atomic and the per-packet tag scratch is pooled, so parallel Process
// calls share no locks beyond the database's single resolve RLock.
type Enforcer struct {
	cfg    Config
	db     *analyzer.Database
	engine *policy.Engine

	tags sync.Pool // *tag.Tag scratch, reused across packets

	processed      atomic.Uint64
	accepted       atomic.Uint64
	dropped        atomic.Uint64
	droppedByCause [dropCauseCount]atomic.Uint64
}

// New builds an enforcer.
func New(cfg Config, db *analyzer.Database, engine *policy.Engine) *Enforcer {
	return &Enforcer{
		cfg:    cfg,
		db:     db,
		engine: engine,
		tags:   sync.Pool{New: func() any { return new(tag.Tag) }},
	}
}

// Engine exposes the policy engine (for central reconfiguration).
func (e *Enforcer) Engine() *policy.Engine { return e.engine }

// Process runs the three enforcement stages on one packet.
func (e *Enforcer) Process(pkt *ipv4.Packet) Result {
	res := e.process(pkt)
	e.processed.Add(1)
	if res.Verdict == policy.VerdictAllow {
		e.accepted.Add(1)
	} else {
		e.dropped.Add(1)
		if res.Cause >= 0 && int(res.Cause) < len(e.droppedByCause) {
			e.droppedByCause[res.Cause].Add(1)
		}
	}
	return res
}

func (e *Enforcer) process(pkt *ipv4.Packet) Result {
	// Stage 1: extraction.
	opt, tagged := pkt.Header.FindOption(ipv4.OptSecurity)
	if !tagged {
		if e.cfg.AllowUntagged {
			return Result{Verdict: policy.VerdictAllow}
		}
		return Result{Verdict: policy.VerdictDrop, Cause: DropUntagged}
	}
	decoded := e.tags.Get().(*tag.Tag)
	defer e.tags.Put(decoded)
	if err := tag.DecodeInto(decoded, opt.Data); err != nil {
		return Result{Verdict: policy.VerdictDrop, Cause: DropMalformedTag}
	}

	// Stage 2: decoding via the analyzer database — the app resolves once
	// and the whole stack decodes through the lock-free handle.
	resolver, known := e.db.Resolve(decoded.AppHash)
	if !known {
		if e.cfg.AllowUnknownApps {
			return Result{Verdict: policy.VerdictAllow, AppHash: decoded.AppHash}
		}
		return Result{Verdict: policy.VerdictDrop, Cause: DropUnknownApp, AppHash: decoded.AppHash}
	}
	stack, err := resolver.DecodeStackInto(make([]dex.Signature, 0, len(decoded.Indexes)), decoded.Indexes)
	if err != nil {
		return Result{Verdict: policy.VerdictDrop, Cause: DropBadIndex, AppHash: decoded.AppHash}
	}

	// Stage 3: enforcement.
	decision := e.engine.Evaluate(decoded.AppHash, stack)
	res := Result{
		Verdict:  decision.Verdict,
		AppHash:  decoded.AppHash,
		Stack:    stack,
		Decision: &decision,
	}
	if decision.Verdict == policy.VerdictDrop {
		res.Cause = DropPolicy
	}
	return res
}

// Stats returns a snapshot of the counters.
func (e *Enforcer) Stats() Stats {
	out := Stats{
		Processed:      e.processed.Load(),
		Accepted:       e.accepted.Load(),
		Dropped:        e.dropped.Load(),
		DroppedByCause: make(map[DropCause]uint64),
	}
	for c := range e.droppedByCause {
		if n := e.droppedByCause[c].Load(); n > 0 {
			out.DroppedByCause[DropCause(c)] = n
		}
	}
	return out
}
