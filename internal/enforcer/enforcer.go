// Package enforcer implements BorderPatrol's Policy Enforcer (paper
// §IV-A3, §V-C): the network-side component that inspects every packet
// leaving the BYOD perimeter in three stages — (i) extraction of the app
// hash and index sequence from IP_OPTIONS, (ii) decoding indexes back to
// method signatures through the Offline Analyzer's database, and
// (iii) enforcement of the configured policy rules.
//
// Per the paper's deployment discussion (§VII "Compatibility"), packets
// without a BorderPatrol tag are dropped by default: inside the perimeter
// every work-profile packet must originate from a socket the Context
// Manager controls, so untagged traffic is either a personal app that has
// no business on the corporate network or an evasion attempt (e.g. native
// sockets).
//
// When a flow cache is configured (Config.Flows), the enforcer exploits
// the paper's §VI-D observation that every packet of a connection carries
// the same contextual tag: the first packet of a flow pays the full
// extract–decode–evaluate pipeline, and every later packet is answered by
// a single flow-table probe keyed on the raw tag bytes — no tag decode,
// no stack decode, no policy evaluation. Cached verdicts self-invalidate
// when the policy engine or the signature database changes (generation
// counters), so the fast path can never serve a pre-reconfiguration
// decision.
package enforcer

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/devctx"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/tag"
	"borderpatrol/internal/transport"
)

// FlowCache caches one enforcement Result per flow. Cached Results share
// their Stack slice and Decision pointer across every packet of the flow;
// both are immutable once published and must not be mutated by callers.
type FlowCache = flowtable.Table[Result]

// NewFlowCache builds a verdict cache for the enforcer.
func NewFlowCache(cfg flowtable.Config) *FlowCache {
	return flowtable.New[Result](cfg)
}

// AuditSink receives enforcement decisions. Implementations must never
// block: the enforcer calls Record on the per-packet path and RecordBatch
// once per batched drain (audit.Log satisfies this with a bounded async
// pipeline that sheds load instead of stalling enforcement).
type AuditSink interface {
	// Record captures one decision.
	Record(pkt *ipv4.Packet, res Result)
	// RecordBatch captures a burst; res[i] corresponds to pkts[i].
	RecordBatch(pkts []*ipv4.Packet, res []Result)
}

// Config selects enforcer behaviour for edge cases.
type Config struct {
	// AllowUntagged admits packets without a BorderPatrol option instead of
	// dropping them (useful for staged rollouts; the paper's deployment
	// drops them).
	AllowUntagged bool
	// AllowUnknownApps admits tagged packets whose app hash is not in the
	// database. The default (false) drops them: an unprovisioned or
	// repackaged app must not exfiltrate just by being unknown.
	AllowUnknownApps bool
	// Flows enables per-flow verdict caching (nil disables it). The cache
	// is consulted before tag decoding; see the package comment.
	Flows *FlowCache
	// Audit receives every decision (nil disables auditing). Process
	// records per packet; ProcessBatch records once per burst.
	Audit AuditSink
	// Context supplies per-device context for the policy's risk program
	// (nil disables the contextual dimension). It is consulted only on the
	// SYN/cache-miss path — and only when the loaded rule set actually
	// carries risk rules — so the per-packet cache-hit path never touches
	// it. Its generation is folded into the flow-cache generation, so a
	// device-context change invalidates cached verdicts the same way a
	// policy swap does.
	Context *devctx.Source
	// Clock supplies virtual time for the risk program's time-of-day and
	// weekday predicates (nil pins them to Monday 00:00).
	Clock devctx.Clock
}

// DropCause classifies why the enforcer dropped a packet.
type DropCause int

// Drop causes.
const (
	// DropNone means the packet was accepted.
	DropNone DropCause = iota
	// DropUntagged is a packet without the BorderPatrol IP option.
	DropUntagged
	// DropMalformedTag is a tag that failed to decode.
	DropMalformedTag
	// DropUnknownApp is a tag whose app hash is not in the database.
	DropUnknownApp
	// DropBadIndex is a tag with an index outside the app's method table.
	DropBadIndex
	// DropPolicy is a packet denied by a policy rule (or default).
	DropPolicy
	// DropRisk is a flow denied by its contextual risk score reaching the
	// block threshold (access rules would have admitted it).
	DropRisk
	// DropSeqInjection is a response-direction TCP segment whose sequence
	// number broke the connection's continuity — the mid-stream injection
	// signature the gateway's directional verdict state exists to catch.
	DropSeqInjection

	// dropCauseCount sizes per-cause counters; keep it last so new causes
	// automatically grow the counter array.
	dropCauseCount
)

// NumDropCauses is the number of defined drop causes (DropNone included);
// external stages sizing per-cause state use it instead of guessing.
const NumDropCauses = int(dropCauseCount)

// String names the drop cause.
func (c DropCause) String() string {
	switch c {
	case DropNone:
		return "accepted"
	case DropUntagged:
		return "untagged"
	case DropMalformedTag:
		return "malformed-tag"
	case DropUnknownApp:
		return "unknown-app"
	case DropBadIndex:
		return "bad-index"
	case DropPolicy:
		return "policy"
	case DropRisk:
		return "risk"
	case DropSeqInjection:
		return "seq-injection"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// Result reports the enforcer's decision for one packet, with the decoded
// context for auditing and the Policy Extractor. Results served from the
// flow cache share Stack and Decision across packets of the flow; treat
// both as read-only.
type Result struct {
	Verdict policy.Verdict
	Cause   DropCause
	// AppHash is the decoded app identity (zero when untagged).
	AppHash dex.TruncatedHash
	// Stack is the decoded stack trace (nil when undecodable).
	Stack []dex.Signature
	// Decision carries the policy engine's reasoning when it ran.
	Decision *policy.Decision
}

// Stats counts enforcement outcomes.
type Stats struct {
	Processed      uint64
	Accepted       uint64
	Dropped        uint64
	DroppedByCause map[DropCause]uint64
	// Flow snapshots the verdict cache (zero value when caching is off).
	Flow flowtable.Stats
	// BatchMemoHits counts packets answered by ProcessBatch's same-flow
	// memo without even a flow-table probe (keep-alive trains).
	BatchMemoHits uint64
}

// scratch is the pooled per-packet working set: the decoded tag and the
// stack-decode buffer. Pooling both keeps the miss path free of scratch
// allocations; only data that escapes into a Result is copied out.
type scratch struct {
	tag   tag.Tag
	stack []dex.Signature
}

// Latency sampling masks. The hot paths cannot afford two time.Now calls
// per packet (~40–50 ns against a ~100 ns cache-hit budget), so latency
// histograms are fed from a uniform sample: a packet is timed when a
// per-M fastrand word masks to zero. Sampling is unbiased (the decision
// is taken before the timed work starts) and the untimed packets pay only
// the ~2 ns rand draw and a branch.
const (
	// hitSampleMask times 1-in-64 cache-hit packets — the path runs
	// millions of times a second, so the histogram stays dense anyway.
	hitSampleMask = 63
	// missSampleMask times 1-in-16 full-pipeline misses (one per flow in
	// the steady state; floods still produce ample samples).
	missSampleMask = 15
	// evalSampleMask times 1-in-16 policy-engine evaluations.
	evalSampleMask = 15
)

// instruments is the enforcer's always-on latency telemetry. The
// histograms are allocation-free fixed arrays (~1 KiB each) recorded with
// two atomic adds, so they exist whether or not a registry ever scrapes
// them — the gated benchmarks measure the instrumented path.
type instruments struct {
	// hitLatency is the sampled flow-cache-hit Process latency (scalar
	// path; the batched drain reports per-burst figures instead).
	hitLatency *metrics.Histogram
	// missLatency is the sampled full extract–decode–evaluate pipeline
	// latency (flow-cache misses and uncached configurations).
	missLatency *metrics.Histogram
	// evalLatency is the sampled policy-engine Evaluate latency (stage 3
	// alone, a subset of missLatency).
	evalLatency *metrics.Histogram
	// batchLatency is the whole-ProcessBatch wall time; batchPackets the
	// burst size, so ns/packet is derivable per quantile band.
	batchLatency *metrics.Histogram
	batchPackets *metrics.Histogram
	// riskScore is the per-flow contextual risk score, recorded once per
	// SYN-time evaluation (negative scores clamp to the zero bucket).
	riskScore *metrics.Histogram
}

func newInstruments() instruments {
	return instruments{
		hitLatency:   metrics.NewHistogram(),
		missLatency:  metrics.NewHistogram(),
		evalLatency:  metrics.NewHistogram(),
		batchLatency: metrics.NewHistogram(),
		batchPackets: metrics.NewHistogram(),
		riskScore:    metrics.NewHistogram(),
	}
}

// Enforcer evaluates packets against a policy using a signature database.
// It is safe for concurrent use and scales across cores: counters are
// atomic, the per-packet scratch is pooled, and the optional flow cache is
// lock-striped, so parallel Process calls share no globally serialized
// state beyond the database's single resolve RLock on cache misses.
type Enforcer struct {
	cfg    Config
	db     *analyzer.Database
	engine *policy.Engine
	flows  *FlowCache
	audit  AuditSink
	ctxSrc *devctx.Source
	clock  devctx.Clock

	scratches sync.Pool // *scratch, reused across packets

	// Outcome counters are striped metrics counters (one atomic add per
	// packet, padded shards on multi-core), summed only by Stats/scrapes.
	accepted       *metrics.Counter
	dropped        *metrics.Counter
	droppedByCause [dropCauseCount]*metrics.Counter
	batchMemoHits  *metrics.Counter

	ins instruments
}

// New builds an enforcer.
func New(cfg Config, db *analyzer.Database, engine *policy.Engine) *Enforcer {
	e := &Enforcer{
		cfg:           cfg,
		db:            db,
		engine:        engine,
		flows:         cfg.Flows,
		audit:         cfg.Audit,
		ctxSrc:        cfg.Context,
		clock:         cfg.Clock,
		scratches:     sync.Pool{New: func() any { return new(scratch) }},
		accepted:      metrics.NewCounter(),
		dropped:       metrics.NewCounter(),
		batchMemoHits: metrics.NewCounter(),
		ins:           newInstruments(),
	}
	for c := range e.droppedByCause {
		e.droppedByCause[c] = metrics.NewCounter()
	}
	return e
}

// Engine exposes the policy engine (for central reconfiguration).
func (e *Enforcer) Engine() *policy.Engine { return e.engine }

// Database exposes the signature database (the dataplane's rule-stage
// compiler validates tag indexes against each app's method-table size).
func (e *Enforcer) Database() *analyzer.Database { return e.db }

// FlowCacheEnabled reports whether per-flow verdict caching is active.
func (e *Enforcer) FlowCacheEnabled() bool { return e.flows != nil }

// generation combines the policy engine's, the signature database's and —
// when configured — the device-context source's mutation counters into the
// cache generation: a change to any of the three invalidates every cached
// verdict. The layout is db<<42 | context<<21 | engine; aliasing would
// need 2²¹ (~2M) engine swaps or context changes without the other
// counters moving AND a colliding wrap of the lost high bits, which cannot
// happen in a deployment's lifetime. Reading the context generation is one
// extra atomic load on the per-packet path (~1 ns).
func (e *Enforcer) generation() uint64 {
	g := e.db.Generation()<<42 | (e.engine.Generation()&0x1fffff)<<21
	if e.ctxSrc != nil {
		g |= e.ctxSrc.Generation() & 0x1fffff
	}
	return g
}

// CacheGeneration exposes the combined cache generation (see generation)
// to external verdict stages layered below the enforcer: the dataplane's
// per-core match tables stamp entries with it and treat any change as
// invalidation, inheriting the exact contract the flow table uses.
func (e *Enforcer) CacheGeneration() uint64 { return e.generation() }

// flowContext fills fc with the packet's SYN-time context — the source
// device's context snapshot plus the virtual wall-clock position — and
// returns it, or returns nil when the contextual dimension is inactive
// (no source configured, or no risk rules loaded). Runs only on the
// cache-miss path.
func (e *Enforcer) flowContext(pkt *ipv4.Packet, fc *policy.FlowContext) *policy.FlowContext {
	if e.ctxSrc == nil || !e.engine.ContextActive() {
		return nil
	}
	fc.Device, _ = e.ctxSrc.Lookup(pkt.Header.Src)
	if e.clock != nil {
		fc.MinuteOfDay, fc.Weekday = policy.TimeOfVirtual(e.clock.Now())
	}
	return fc
}

// flowKey fills the cache key for a tagged packet without decoding the
// tag: the full 5-tuple — endpoints and protocol from the IPv4 header,
// real transport ports peeked (zero-alloc, structural checks only) out of
// the TCP/UDP header — and the tag payload (which begins with the app's
// truncated hash) pinned verbatim plus its digest. Real ports mean two
// apps talking to the same host pair get distinct flow entries, and every
// TCP connection is its own flow (so teardown on FIN cannot evict a
// sibling connection's verdict). Ports stay zero for legacy plain
// payloads (no transport header) and for non-first fragments — PeekPacket
// refuses both, so garbage bytes can never be keyed as ports. ok is false
// for oversized tag payloads, which must bypass the cache. The key is
// filled through a pointer so the hot path never copies the ~100-byte Key
// across call frames.
func flowKey(k *flowtable.Key, pkt *ipv4.Packet, tagData []byte) (ok bool) {
	k.Src = pkt.Header.Src
	k.Dst = pkt.Header.Dst
	k.Proto = pkt.Header.Protocol
	k.SrcPort, k.DstPort = 0, 0
	if sp, dp, hasTransport := transport.PeekPorts(pkt.Header.Protocol, pkt.Header.FragOff, pkt.Payload); hasTransport {
		k.SrcPort = sp
		k.DstPort = dp
	}
	return k.SetTag(tagData)
}

// Process runs the three enforcement stages on one packet, short-circuited
// by the flow cache when one is configured.
func (e *Enforcer) Process(pkt *ipv4.Packet) Result {
	res := e.process(pkt)
	e.count(res)
	if e.audit != nil {
		e.audit.Record(pkt, res)
	}
	return res
}

// count updates the outcome counters for one processed packet (the
// processed total is derived as accepted+dropped, keeping the hot path at
// one counter update per packet).
func (e *Enforcer) count(res Result) {
	if res.Verdict == policy.VerdictAllow {
		e.accepted.Inc()
	} else {
		e.dropped.Inc()
		if res.Cause >= 0 && int(res.Cause) < len(e.droppedByCause) {
			e.droppedByCause[res.Cause].Inc()
		}
	}
}

func (e *Enforcer) process(pkt *ipv4.Packet) Result {
	// Stage 1: extraction.
	opt, tagged := pkt.Header.FindOption(ipv4.OptSecurity)
	if !tagged {
		return e.untagged()
	}
	if e.flows == nil {
		return e.timedEvaluate(pkt, opt.Data)
	}
	// Fast path: probe the flow table on the raw tag bytes. The generation
	// is read before the probe (and before any evaluation) so that a
	// concurrent SetRules/AddEntry makes the inserted entry stale rather
	// than letting a pre-update verdict survive under the new generation.
	gen := e.generation()
	var key flowtable.Key
	if !flowKey(&key, pkt, opt.Data) {
		return e.timedEvaluate(pkt, opt.Data)
	}
	// The sampling decision precedes the probe so the timed subset is an
	// unbiased slice of lookups; untimed packets pay one fastrand draw.
	var hitStart time.Time
	timed := rand.Uint32()&hitSampleMask == 0
	if timed {
		hitStart = time.Now()
	}
	if res, ok := e.flows.Lookup(key, gen); ok {
		if timed {
			e.ins.hitLatency.Record(time.Since(hitStart).Nanoseconds())
		}
		return res
	}
	res := e.timedEvaluate(pkt, opt.Data)
	e.flows.Insert(key, gen, res)
	return res
}

// timedEvaluate runs the full miss pipeline, recording its latency for a
// sampled subset of calls.
func (e *Enforcer) timedEvaluate(pkt *ipv4.Packet, data []byte) Result {
	if rand.Uint32()&missSampleMask != 0 {
		return e.evaluateTag(pkt, data)
	}
	start := time.Now()
	res := e.evaluateTag(pkt, data)
	e.ins.missLatency.Record(time.Since(start).Nanoseconds())
	return res
}

func (e *Enforcer) untagged() Result {
	if e.cfg.AllowUntagged {
		return Result{Verdict: policy.VerdictAllow}
	}
	return Result{Verdict: policy.VerdictDrop, Cause: DropUntagged}
}

// evaluateTag is the full miss path: decode the tag, decode the stack,
// evaluate policy — including, when configured, the contextual risk
// program over the source device's context (the paper's "evaluate once at
// SYN time" point: whatever this returns is what the flow cache serves for
// the rest of the flow). Scratch buffers are pooled; only the Stack and
// Decision that escape into the Result are freshly allocated (once per
// flow when caching is on).
func (e *Enforcer) evaluateTag(pkt *ipv4.Packet, data []byte) Result {
	sc := e.scratches.Get().(*scratch)
	defer e.scratches.Put(sc)

	if err := tag.DecodeInto(&sc.tag, data); err != nil {
		return Result{Verdict: policy.VerdictDrop, Cause: DropMalformedTag}
	}

	// Stage 2: decoding via the analyzer database — the app resolves once
	// and the whole stack decodes through the lock-free handle into the
	// pooled scratch buffer.
	resolver, known := e.db.Resolve(sc.tag.AppHash)
	if !known {
		if e.cfg.AllowUnknownApps {
			return Result{Verdict: policy.VerdictAllow, AppHash: sc.tag.AppHash}
		}
		return Result{Verdict: policy.VerdictDrop, Cause: DropUnknownApp, AppHash: sc.tag.AppHash}
	}
	stack, err := resolver.DecodeStackInto(sc.stack[:0], sc.tag.Indexes)
	if err != nil {
		return Result{Verdict: policy.VerdictDrop, Cause: DropBadIndex, AppHash: sc.tag.AppHash}
	}
	sc.stack = stack // retain grown capacity for the next packet

	// Stage 3: enforcement (latency sampled; see instruments). The flow
	// context — device posture, network class, velocity, virtual clock —
	// is built here, once per flow, and folded into the cached decision.
	var fcBuf policy.FlowContext
	fc := e.flowContext(pkt, &fcBuf)
	var decision policy.Decision
	if rand.Uint32()&evalSampleMask == 0 {
		evalStart := time.Now()
		decision = e.engine.EvaluateFlow(sc.tag.AppHash, stack, fc)
		e.ins.evalLatency.Record(time.Since(evalStart).Nanoseconds())
	} else {
		decision = e.engine.EvaluateFlow(sc.tag.AppHash, stack, fc)
	}
	if decision.RiskApplied {
		e.ins.riskScore.Record(int64(decision.RiskScore))
	}
	res := Result{
		Verdict: decision.Verdict,
		AppHash: sc.tag.AppHash,
		// The scratch buffer goes back to the pool; the escaping Result
		// needs its own copy (shared by every cache hit of this flow).
		Stack:    append(make([]dex.Signature, 0, len(stack)), stack...),
		Decision: &decision,
	}
	if decision.Verdict == policy.VerdictDrop {
		if decision.RiskBlocked {
			res.Cause = DropRisk
		} else {
			res.Cause = DropPolicy
		}
	}
	return res
}

// ProcessBatch enforces a batch of packets, amortizing work across packets
// of the same flow when a flow cache is configured: consecutive packets
// with identical flow keys (the common shape of a keep-alive train or an
// upload burst) reuse the previous packet's Result without even probing
// the flow table, and the flow table covers non-adjacent repeats. With
// caching disabled every packet pays the full pipeline — the uncached
// configuration is a true per-packet baseline. Results are appended to
// out (reusing its backing array) and returned; out[i] corresponds to
// pkts[i]. Safe for concurrent use — a per-core worker pool can split one
// queue drain into independent ProcessBatch calls.
func (e *Enforcer) ProcessBatch(pkts []*ipv4.Packet, out []Result) []Result {
	if cap(out) < len(pkts) {
		out = make([]Result, 0, len(pkts))
	} else {
		out = out[:0]
	}
	// Per-burst timing: two clock reads and two histogram records for the
	// whole batch (~1 ns/packet at the default burst size), not per packet.
	batchStart := time.Now()
	var (
		memoKey   flowtable.Key
		memoGen   uint64
		memoRes   Result
		memoValid bool
	)
	for _, pkt := range pkts {
		opt, tagged := pkt.Header.FindOption(ipv4.OptSecurity)
		var res Result
		switch {
		case !tagged:
			res = e.untagged()
		case e.flows == nil:
			res = e.timedEvaluate(pkt, opt.Data)
		default:
			gen := e.generation()
			var key flowtable.Key
			cacheable := flowKey(&key, pkt, opt.Data)
			switch {
			case !cacheable:
				res = e.timedEvaluate(pkt, opt.Data)
			case memoValid && key == memoKey && gen == memoGen:
				res = memoRes
				e.batchMemoHits.Inc()
			default:
				if cached, ok := e.flows.Lookup(key, gen); ok {
					res = cached
				} else {
					res = e.timedEvaluate(pkt, opt.Data)
					e.flows.Insert(key, gen, res)
				}
				memoKey, memoGen, memoRes, memoValid = key, gen, res, true
			}
		}
		e.count(res)
		out = append(out, res)
	}
	if e.audit != nil {
		// One audit charge for the whole burst (a single stripe lock in the
		// async pipeline), not one per packet.
		e.audit.RecordBatch(pkts, out)
	}
	if len(pkts) > 0 {
		e.ins.batchLatency.Record(time.Since(batchStart).Nanoseconds())
		e.ins.batchPackets.Record(int64(len(pkts)))
	}
	return out
}

// EndFlow removes a packet's flow from the verdict cache — the explicit
// teardown the gateway calls when it observes a connection close, so dead
// flows free their slot immediately instead of waiting for TTL or
// eviction pressure. The next packet on the same flow re-resolves through
// the full pipeline. Reports whether a cached verdict was removed.
func (e *Enforcer) EndFlow(pkt *ipv4.Packet) bool {
	if e.flows == nil {
		return false
	}
	opt, tagged := pkt.Header.FindOption(ipv4.OptSecurity)
	if !tagged {
		return false
	}
	var key flowtable.Key
	if !flowKey(&key, pkt, opt.Data) {
		return false
	}
	return e.flows.Delete(key)
}

// SweepFlows reclaims TTL-expired verdict-cache entries (half-open flows
// whose teardown the gateway never saw — a lost FIN, a silently dead
// device). Returns how many entries it freed; zero when caching is off or
// the cache has no TTL.
func (e *Enforcer) SweepFlows() int {
	if e.flows == nil {
		return 0
	}
	return e.flows.Sweep()
}

// PurgeFlows empties the verdict cache — the gateway calls this when it
// restarts, modelling the total loss of dataplane state: every live flow's
// next packet re-resolves through the full extract–decode–evaluate
// pipeline.
func (e *Enforcer) PurgeFlows() {
	if e.flows != nil {
		e.flows.Purge()
	}
}

// Stats returns a snapshot of the counters.
func (e *Enforcer) Stats() Stats {
	accepted := e.accepted.Value()
	dropped := e.dropped.Value()
	out := Stats{
		Processed:      accepted + dropped,
		Accepted:       accepted,
		Dropped:        dropped,
		DroppedByCause: make(map[DropCause]uint64),
		BatchMemoHits:  e.batchMemoHits.Value(),
	}
	for c := range e.droppedByCause {
		if n := e.droppedByCause[c].Value(); n > 0 {
			out.DroppedByCause[DropCause(c)] = n
		}
	}
	if e.flows != nil {
		out.Flow = e.flows.Stats()
	}
	return out
}

// RegisterMetrics attaches the enforcer's instruments — verdict and
// drop-cause counters, the sampled latency histograms, the flow-cache
// counters, and the policy engine's evaluation counters — to a registry.
// Everything except the histograms is exported through scrape-time
// closures over counters the enforcer already maintains, so registration
// adds zero hot-path cost.
func (e *Enforcer) RegisterMetrics(r *metrics.Registry) {
	const verdictHelp = "Enforcement verdicts by decision."
	r.CounterFunc("bp_enforcer_verdicts_total", verdictHelp, e.accepted.Value, metrics.L("decision", "allow"))
	r.CounterFunc("bp_enforcer_verdicts_total", verdictHelp, e.dropped.Value, metrics.L("decision", "drop"))
	for c := DropUntagged; c < dropCauseCount; c++ {
		r.CounterFunc("bp_enforcer_drops_total", "Dropped packets by cause.",
			e.droppedByCause[c].Value, metrics.L("cause", c.String()))
	}
	r.CounterFunc("bp_enforcer_batch_memo_hits_total",
		"Packets answered by the batch drain's same-flow memo without a flow-table probe.",
		e.batchMemoHits.Value)

	r.RegisterHistogram("bp_enforcer_cache_hit_latency_ns",
		"Flow-cache-hit Process latency (sampled 1/64).", e.ins.hitLatency)
	r.RegisterHistogram("bp_enforcer_cache_miss_latency_ns",
		"Full extract-decode-evaluate pipeline latency (sampled 1/16).", e.ins.missLatency)
	r.RegisterHistogram("bp_enforcer_evaluate_latency_ns",
		"Policy-engine Evaluate latency (sampled 1/16).", e.ins.evalLatency)
	r.RegisterHistogram("bp_enforcer_batch_latency_ns",
		"ProcessBatch wall time per burst.", e.ins.batchLatency)
	r.RegisterHistogram("bp_enforcer_batch_packets",
		"Packets per ProcessBatch burst.", e.ins.batchPackets)

	if fl := e.flows; fl != nil {
		r.CounterFunc("bp_flowtable_hits_total", "Flow-cache lookups answered without decoding.",
			func() uint64 { return fl.Stats().Hits })
		r.CounterFunc("bp_flowtable_misses_total", "Flow-cache lookups that paid the full pipeline.",
			func() uint64 { return fl.Stats().Misses })
		r.CounterFunc("bp_flowtable_inserts_total", "Flow-cache entries inserted.",
			func() uint64 { return fl.Stats().Inserts })
		r.CounterFunc("bp_flowtable_evictions_total", "Flows evicted under capacity pressure.",
			func() uint64 { return fl.Stats().Evictions })
		r.CounterFunc("bp_flowtable_stale_drops_total", "Cached verdicts invalidated by a generation change.",
			func() uint64 { return fl.Stats().StaleDrops })
		r.CounterFunc("bp_flowtable_expired_drops_total", "Cached verdicts expired by TTL.",
			func() uint64 { return fl.Stats().ExpiredDrops })
		r.CounterFunc("bp_flowtable_admission_drops_total", "Inserts refused by the negative-cache admission guard.",
			func() uint64 { return fl.Stats().AdmissionDrops })
		r.GaugeFunc("bp_flowtable_live", "Flows currently cached.",
			func() float64 { return float64(fl.Stats().Live) })
	}

	eng := e.engine
	r.CounterFunc("bp_policy_evaluations_total", "Packets that reached the compiled policy engine.",
		func() uint64 { return eng.Stats().Evaluations })
	r.CounterFunc("bp_policy_default_hits_total", "Evaluations decided by the default verdict.",
		func() uint64 { return eng.Stats().DefaultHits })
	r.CounterFunc("bp_policy_degraded_hits_total", "Packets decided by a degraded-posture override.",
		func() uint64 { return eng.Stats().DegradedHits })

	// Contextual-risk families: SYN-time evaluations, their outcomes, the
	// score distribution, and (when a source is wired) the device-side
	// generation and per-cause invalidation counters.
	r.CounterFunc("bp_context_evaluations_total",
		"Flows scored by the contextual risk program (once per flow, at SYN time).",
		func() uint64 { return eng.Stats().RiskEvaluations })
	r.CounterFunc("bp_context_warns_total",
		"Risk evaluations that reached the warn threshold (admitted, flagged).",
		func() uint64 { return eng.Stats().RiskWarns })
	r.CounterFunc("bp_context_blocks_total",
		"Risk evaluations that reached the block threshold (flow dropped).",
		func() uint64 { return eng.Stats().RiskBlocks })
	r.RegisterHistogram("bp_context_risk_score",
		"Per-flow contextual risk score at SYN-time evaluation.", e.ins.riskScore)
	if e.ctxSrc != nil {
		e.ctxSrc.RegisterMetrics(r)
	}
}
