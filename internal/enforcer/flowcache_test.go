package enforcer

import (
	"sync"
	"testing"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/policy"
)

// newCachedEnforcer builds an enforcer with a flow cache attached.
func newCachedEnforcer(t *testing.T, cfg Config, rules []policy.Rule, def policy.Verdict) (*Enforcer, *analyzer.Database, *dex.APK) {
	t.Helper()
	cfg.Flows = NewFlowCache(flowtable.Config{Capacity: 1024})
	return newEnforcer(t, cfg, rules, def)
}

func TestFlowCacheHitSkipsPipeline(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)

	pkt := mkPacket(t, apk, db, "download")
	first := e.Process(pkt)
	if first.Verdict != policy.VerdictAllow {
		t.Fatalf("first packet dropped: %+v", first)
	}
	evalsAfterFirst := e.Engine().Stats().Evaluations

	// Ten more packets of the same flow: all hits, zero extra evaluations.
	for i := 0; i < 10; i++ {
		res := e.Process(pkt)
		if res.Verdict != policy.VerdictAllow {
			t.Fatalf("cached packet dropped: %+v", res)
		}
		if len(res.Stack) != 1 || res.Stack[0].Name != "download" {
			t.Fatalf("cached stack = %v", res.Stack)
		}
		if res.Decision == nil {
			t.Fatal("cached decision missing")
		}
	}
	if got := e.Engine().Stats().Evaluations; got != evalsAfterFirst {
		t.Fatalf("cache hits re-evaluated policy: %d evaluations, want %d", got, evalsAfterFirst)
	}
	st := e.Stats()
	if st.Flow.Hits != 10 || st.Flow.Misses != 1 {
		t.Fatalf("flow stats = %+v", st.Flow)
	}
	if st.Processed != 11 || st.Accepted != 11 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSetRulesFlipsCachedVerdict is the central invalidation property: a
// mid-stream policy change must flip the verdict of an already-cached
// flow on its very next packet.
func TestSetRulesFlipsCachedVerdict(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{}, nil, policy.VerdictAllow)

	tracker := mkPacket(t, apk, db, "beacon", "download")
	if res := e.Process(tracker); res.Verdict != policy.VerdictAllow {
		t.Fatalf("pre-rule packet dropped: %+v", res)
	}
	if res := e.Process(tracker); res.Verdict != policy.VerdictAllow {
		t.Fatalf("cached pre-rule packet dropped: %+v", res)
	}

	// Central reconfiguration: deny the tracker library.
	if err := e.Engine().SetRules([]policy.Rule{
		{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"},
	}); err != nil {
		t.Fatal(err)
	}
	res := e.Process(tracker)
	if res.Verdict != policy.VerdictDrop || res.Cause != DropPolicy {
		t.Fatalf("cached allow survived SetRules: %+v", res)
	}
	if st := e.Stats(); st.Flow.StaleDrops == 0 {
		t.Fatalf("no stale drop recorded: %+v", st.Flow)
	}

	// And back: removing the rule re-admits the flow.
	if err := e.Engine().SetRules(nil); err != nil {
		t.Fatal(err)
	}
	if res := e.Process(tracker); res.Verdict != policy.VerdictAllow {
		t.Fatalf("cached drop survived rule removal: %+v", res)
	}
}

// TestAddEntryFlipsCachedVerdict covers the database half of invalidation:
// an unknown-app drop cached before provisioning must re-evaluate (and
// admit) once the app is added.
func TestAddEntryFlipsCachedVerdict(t *testing.T) {
	apk := testAPK()
	db := analyzer.NewDatabase()
	eng, err := policy.NewEngine(nil, policy.VerdictAllow)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Flows: NewFlowCache(flowtable.Config{Capacity: 1024})}, db, eng)

	// Build the packet against a throwaway database (mkPacket needs the
	// app's entry to find indexes; the enforcer's db deliberately lacks it).
	pkt := mkPacket(t, apk, dbWith(t, apk), "download")

	if res := e.Process(pkt); res.Verdict != policy.VerdictDrop || res.Cause != DropUnknownApp {
		t.Fatalf("unprovisioned app not dropped: %+v", res)
	}
	// Second packet served from cache, still dropped.
	if res := e.Process(pkt); res.Verdict != policy.VerdictDrop || res.Cause != DropUnknownApp {
		t.Fatalf("cached unknown-app verdict wrong: %+v", res)
	}

	// Provision the app mid-stream: the generation bump must invalidate
	// the cached drop and the next packet decodes and flows.
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	res := e.Process(pkt)
	if res.Verdict != policy.VerdictAllow {
		t.Fatalf("cached unknown-app drop survived AddEntry: %+v", res)
	}
	if len(res.Stack) != 1 {
		t.Fatalf("post-provisioning stack = %v", res.Stack)
	}
}

// dbWith returns a throwaway database containing apk, used only to build
// correctly-indexed packets for apps the enforcer under test does not know.
func dbWith(t *testing.T, apk *dex.APK) *analyzer.Database {
	t.Helper()
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCachedMatchesFresh locks in equivalence: across a matrix of packets
// and rule updates, a cache-enabled enforcer must produce exactly the
// verdicts, causes, and stacks of a cache-free one.
func TestCachedMatchesFresh(t *testing.T) {
	ruleSets := [][]policy.Rule{
		nil,
		{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		{{Action: policy.Deny, Level: policy.LevelMethod, Target: "Lcom/corp/files/SyncEngine;->upload()V"}},
		{{Action: policy.Allow, Level: policy.LevelLibrary, Target: "com/corp"},
			{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com"}},
	}

	cached, cdb, apk := newCachedEnforcer(t, Config{}, nil, policy.VerdictAllow)
	fresh, fdb, _ := newEnforcer(t, Config{}, nil, policy.VerdictAllow)

	pkts := []*ipv4.Packet{
		mkPacket(t, apk, cdb, "download"),
		mkPacket(t, apk, cdb, "upload"),
		mkPacket(t, apk, cdb, "beacon", "download"),
		mkPacket(t, apk, cdb, "beacon"),
	}
	_ = fdb

	for round, rules := range ruleSets {
		if err := cached.Engine().SetRules(rules); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Engine().SetRules(rules); err != nil {
			t.Fatal(err)
		}
		// Two passes per round so the second pass is all cache hits.
		for pass := 0; pass < 2; pass++ {
			for i, pkt := range pkts {
				want := fresh.Process(pkt)
				got := cached.Process(pkt)
				if got.Verdict != want.Verdict || got.Cause != want.Cause {
					t.Fatalf("round %d pass %d pkt %d: cached %v/%v, fresh %v/%v",
						round, pass, i, got.Verdict, got.Cause, want.Verdict, want.Cause)
				}
				if len(got.Stack) != len(want.Stack) {
					t.Fatalf("round %d pkt %d: stack %v vs %v", round, i, got.Stack, want.Stack)
				}
				for f := range got.Stack {
					if got.Stack[f] != want.Stack[f] {
						t.Fatalf("round %d pkt %d frame %d: %v vs %v", round, i, f, got.Stack[f], want.Stack[f])
					}
				}
			}
		}
	}
	if st := cached.Stats(); st.Flow.Hits == 0 {
		t.Fatalf("equivalence matrix never hit the cache: %+v", st.Flow)
	}
}

// TestProcessBatchMatchesProcess checks the batch path end to end,
// including the same-flow memo.
func TestProcessBatchMatchesProcess(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)
	ref, rdb, _ := newEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)
	_ = rdb

	clean := mkPacket(t, apk, db, "download")
	tracker := mkPacket(t, apk, db, "beacon", "download")
	untagged := &ipv4.Packet{Header: clean.Header}
	untagged.Header.Options = nil

	// A keep-alive-shaped batch: runs of the same flow with interleaves.
	batch := []*ipv4.Packet{clean, clean, clean, tracker, tracker, clean, untagged, tracker, clean}
	results := e.ProcessBatch(batch, nil)
	if len(results) != len(batch) {
		t.Fatalf("len(results) = %d, want %d", len(results), len(batch))
	}
	for i, pkt := range batch {
		want := ref.Process(pkt)
		if results[i].Verdict != want.Verdict || results[i].Cause != want.Cause {
			t.Fatalf("pkt %d: batch %v/%v, scalar %v/%v",
				i, results[i].Verdict, results[i].Cause, want.Verdict, want.Cause)
		}
	}
	st := e.Stats()
	if st.Processed != uint64(len(batch)) {
		t.Fatalf("processed = %d, want %d", st.Processed, len(batch))
	}
	if st.BatchMemoHits == 0 {
		t.Fatalf("same-flow runs never used the batch memo: %+v", st)
	}
	// Reusing the out slice must not allocate a new one.
	again := e.ProcessBatch(batch, results)
	if &again[0] != &results[0] {
		t.Fatal("out slice not reused")
	}
}

// TestProcessBatchWithoutCache: with caching disabled, ProcessBatch is a
// true uncached baseline — every packet pays a policy evaluation and the
// same-flow memo stays off (baseline measurements depend on this).
func TestProcessBatchWithoutCache(t *testing.T) {
	e, db, apk := newEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)
	clean := mkPacket(t, apk, db, "download")
	evBefore := e.Engine().Stats().Evaluations
	res := e.ProcessBatch([]*ipv4.Packet{clean, clean, clean, clean}, nil)
	for i, r := range res {
		if r.Verdict != policy.VerdictAllow {
			t.Fatalf("pkt %d dropped: %+v", i, r)
		}
	}
	if got := e.Engine().Stats().Evaluations - evBefore; got != 4 {
		t.Fatalf("evaluations = %d, want 4 (no caching of any kind)", got)
	}
	if st := e.Stats(); st.BatchMemoHits != 0 {
		t.Fatalf("batch memo active without a flow cache: %+v", st)
	}
}

// TestConcurrentFlowCacheReadersVsRuleUpdates drives cached flows from
// many goroutines while SetRules churns, under -race. Verdicts observed
// after a rule set is committed and quiesced must match it — during churn
// we only require that every verdict is one a current-or-concurrent rule
// set could produce (allow or tracker-drop, never a decode failure).
func TestConcurrentFlowCacheReadersVsRuleUpdates(t *testing.T) {
	e, db, apk := newCachedEnforcer(t, Config{},
		[]policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}},
		policy.VerdictAllow)

	tracker := mkPacket(t, apk, db, "beacon", "download")
	clean := mkPacket(t, apk, db, "download")

	const goroutines = 8
	const perG = 400

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			rules := []policy.Rule{{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/flurry"}}
			if flip {
				// Same semantics, different object: forces recompilation
				// and a generation bump every round.
				rules = append(rules, policy.Rule{Action: policy.Deny, Level: policy.LevelLibrary, Target: "com/never/used"})
			}
			flip = !flip
			if err := e.Engine().SetRules(rules); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if res := e.Process(tracker); res.Verdict != policy.VerdictDrop || res.Cause != DropPolicy {
					t.Errorf("tracker packet admitted: %+v", res)
					return
				}
				if res := e.Process(clean); res.Verdict != policy.VerdictAllow {
					t.Errorf("clean packet dropped: %+v", res)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone

	st := e.Stats()
	if st.Processed != goroutines*perG*2 {
		t.Fatalf("processed = %d, want %d", st.Processed, goroutines*perG*2)
	}
	if st.Accepted != goroutines*perG || st.Dropped != goroutines*perG {
		t.Fatalf("accepted/dropped = %d/%d, want %d each", st.Accepted, st.Dropped, goroutines*perG)
	}
}
