// Package sanitizer implements BorderPatrol's Packet Sanitizer (paper
// §IV-A4, §V-D): the last component before the corporate border. It strips
// the BorderPatrol IP option from every policy-conforming packet so that
// (i) RFC 7126-compliant upstream routers do not drop the traffic, and
// (ii) execution-context information (app identity, loaded libraries) never
// leaves the perimeter — a privacy property, not just a routing one.
package sanitizer

import (
	"sync"

	"borderpatrol/internal/ipv4"
)

// Config selects sanitizer behaviour.
type Config struct {
	// StripAllOptions removes every IP option rather than only the
	// BorderPatrol security option. RFC 7126 filtering at the border makes
	// any surviving option fatal, so the paranoid default is true.
	StripAllOptions bool
}

// Stats counts sanitizer activity.
type Stats struct {
	// Processed counts packets seen.
	Processed uint64
	// Cleansed counts packets that had options removed.
	Cleansed uint64
	// AlreadyClean counts packets that needed no work.
	AlreadyClean uint64
}

// Sanitizer removes context tags from outbound packets.
type Sanitizer struct {
	cfg Config

	mu    sync.Mutex
	stats Stats
}

// New builds a sanitizer.
func New(cfg Config) *Sanitizer {
	return &Sanitizer{cfg: cfg}
}

// Process cleanses one packet in place and returns it. The packet the
// caller passes is mutated (the gateway pipeline owns it at this stage).
func (s *Sanitizer) Process(pkt *ipv4.Packet) *ipv4.Packet {
	removed := false
	if s.cfg.StripAllOptions {
		if pkt.Header.HasOptions() {
			pkt.Header.Options = nil
			removed = true
		}
	} else {
		removed = pkt.Header.RemoveOption(ipv4.OptSecurity)
	}
	s.mu.Lock()
	s.stats.Processed++
	if removed {
		s.stats.Cleansed++
	} else {
		s.stats.AlreadyClean++
	}
	s.mu.Unlock()
	return pkt
}

// Stats returns a snapshot of the counters.
func (s *Sanitizer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
