package sanitizer

import (
	"net/netip"
	"testing"

	"borderpatrol/internal/ipv4"
)

func taggedPacket() *ipv4.Packet {
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.0.0.5"),
			Dst:      netip.MustParseAddr("93.184.216.34"),
		},
		Payload: []byte("GET / HTTP/1.1\r\n\r\n"),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: []byte{1, 2, 3, 4}})
	return pkt
}

func TestStripsBorderPatrolOption(t *testing.T) {
	s := New(Config{})
	pkt := s.Process(taggedPacket())
	if pkt.Header.HasOptions() {
		t.Fatalf("options survived: %+v", pkt.Header.Options)
	}
	// The cleansed packet now passes RFC 7126 border filtering.
	if ipv4.BorderFilter(pkt) != ipv4.BorderForward {
		t.Fatal("cleansed packet still dropped at border")
	}
	st := s.Stats()
	if st.Processed != 1 || st.Cleansed != 1 || st.AlreadyClean != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCleanPacketUntouched(t *testing.T) {
	s := New(Config{})
	pkt := taggedPacket()
	pkt.Header.Options = nil
	payloadBefore := string(pkt.Payload)
	out := s.Process(pkt)
	if string(out.Payload) != payloadBefore {
		t.Fatal("payload modified")
	}
	st := s.Stats()
	if st.AlreadyClean != 1 || st.Cleansed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSelectiveStripKeepsOtherOptions(t *testing.T) {
	// With StripAllOptions=false only the BorderPatrol option goes; a
	// timestamp option survives (and would then be dropped at the border —
	// which is why the default strips everything).
	s := New(Config{StripAllOptions: false})
	pkt := taggedPacket()
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptTimestamp, Data: []byte{9}})
	out := s.Process(pkt)
	if _, ok := out.Header.FindOption(ipv4.OptSecurity); ok {
		t.Fatal("security option survived selective strip")
	}
	if _, ok := out.Header.FindOption(ipv4.OptTimestamp); !ok {
		t.Fatal("timestamp option removed by selective strip")
	}
	if ipv4.BorderFilter(out) != ipv4.BorderDrop {
		t.Fatal("expected border drop with surviving option")
	}
}

func TestStripAllOptions(t *testing.T) {
	s := New(Config{StripAllOptions: true})
	pkt := taggedPacket()
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptTimestamp, Data: []byte{9}})
	out := s.Process(pkt)
	if out.Header.HasOptions() {
		t.Fatal("options survived StripAllOptions")
	}
}

func TestSanitizedPacketStillMarshals(t *testing.T) {
	s := New(Config{})
	out := s.Process(taggedPacket())
	buf, err := out.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ipv4.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.HasOptions() {
		t.Fatal("options reappeared after marshal round trip")
	}
	if len(back.Payload) != len(out.Payload) {
		t.Fatal("payload length changed")
	}
}

func TestIdempotent(t *testing.T) {
	s := New(Config{})
	pkt := s.Process(taggedPacket())
	again := s.Process(pkt)
	if again.Header.HasOptions() {
		t.Fatal("second pass found options")
	}
	st := s.Stats()
	if st.Cleansed != 1 || st.AlreadyClean != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
