// Cloudstorage reproduces the paper's §VI-C cloud-storage case study: the
// Dropbox-like app uses one endpoint for every operation (IP blocking is
// all-or-nothing), the Box-like app splits endpoints but listing shares the
// upload IP (blocking it breaks file discovery). BorderPatrol's
// method-level rules — derived automatically by the Policy Extractor from
// two profiling runs — block exactly the uploads.
//
// Run with: go run ./examples/cloudstorage
package main

import (
	"fmt"
	"log"

	"borderpatrol"
)

func main() {
	res, err := borderpatrol.RunCloudCaseStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println()
	if res.Precise() {
		fmt.Println("RESULT: BorderPatrol blocked exactly the undesired functionality —")
		fmt.Println("uploads dropped, login/list/download intact on both apps, matching the paper.")
	} else {
		fmt.Println("RESULT: precision lost — see the table above.")
	}
}
