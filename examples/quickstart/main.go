// Quickstart walks through the entire BorderPatrol pipeline (paper Fig. 2)
// on one app: provision a device, install an app with a tracker library,
// watch the Context Manager tag a socket, decode the tag like the Policy
// Enforcer does, and see the policy separate two functionalities that share
// one destination IP.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"borderpatrol"
)

func main() {
	// 1. Stand up a deployment: provisioned device (patched kernel + Context
	//    Manager) plus the enterprise gateway (Policy Enforcer + Packet
	//    Sanitizer) in front of a simulated network.
	dep, err := borderpatrol.NewDeployment(borderpatrol.DeploymentConfig{
		Policy: `
// Example 1 from the paper: prevent ad/analytics library connections.
{[deny][library]["com/flurry"]}
// Example 3 style: prevent a single method - the upload task.
{[deny][method]["Lcom/corp/files/SyncEngine;->upload([B)V"]}
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// 2. Define an app the way the Offline Analyzer would see it: developer
	//    code plus a bundled tracker library, all in one dex.
	apk := &borderpatrol.APK{
		PackageName: "com.corp.files",
		Label:       "Corp Files",
		Category:    "BUSINESS",
		VersionCode: 3,
		Dexes: []*borderpatrol.DexFile{{
			Classes: []borderpatrol.ClassDef{
				{
					Package: "com/corp/files",
					Name:    "SyncEngine",
					Methods: []borderpatrol.MethodDef{
						{Name: "download", Proto: "(Ljava/lang/String;)V", File: "SyncEngine.java", StartLine: 10, EndLine: 40},
						{Name: "upload", Proto: "([B)V", File: "SyncEngine.java", StartLine: 50, EndLine: 90},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []borderpatrol.MethodDef{
						{Name: "beacon", Proto: "()V", File: "Agent.java", StartLine: 5, EndLine: 25},
					},
				},
			},
		}},
	}

	// 3. Give the app behaviour: three functionalities, all talking to the
	//    SAME destination IP, so IP/DNS-level enforcement cannot tell them
	//    apart — only the stack context can.
	endpoint := netip.AddrPortFrom(netip.MustParseAddr("93.184.216.34"), 443)
	funcs := []borderpatrol.Functionality{
		{
			Name:      "download",
			Desirable: true,
			CallPath: []borderpatrol.Frame{
				{Class: "com/corp/files/SyncEngine", Method: "download", File: "SyncEngine.java", Line: 15},
			},
			Op: borderpatrol.NetOp{Endpoint: endpoint, Host: "files.corp", Method: "GET", Path: "/doc.pdf"},
		},
		{
			Name: "upload",
			CallPath: []borderpatrol.Frame{
				{Class: "com/corp/files/SyncEngine", Method: "upload", File: "SyncEngine.java", Line: 60},
			},
			Op: borderpatrol.NetOp{Endpoint: endpoint, Host: "files.corp", Method: "PUT", Path: "/doc.pdf", PayloadBytes: 2048},
		},
		{
			Name: "analytics",
			CallPath: []borderpatrol.Frame{
				{Class: "com/flurry/sdk/Agent", Method: "beacon", File: "Agent.java", Line: 10},
			},
			Op: borderpatrol.NetOp{Endpoint: endpoint, Host: "data.flurry.com", Method: "POST", Path: "/aap.do", PayloadBytes: 256},
		},
	}

	app, err := dep.InstallApp(apk, funcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %s (apk hash %s, truncated id %s)\n\n",
		apk.PackageName, apk.HashHex(), apk.Truncated())

	// 4. Exercise each functionality and watch the verdicts. All three hit
	//    the same IP; only the call stack distinguishes them.
	for _, name := range []string{"download", "upload", "analytics"} {
		outcomes, err := dep.Exercise(app, name)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range outcomes {
			status := "DELIVERED"
			if !o.Delivered {
				status = "DROPPED at " + o.DropStage
			}
			fmt.Printf("%-10s -> %s\n", name, status)
			if len(o.Stack) > 0 {
				fmt.Println("  decoded stack (innermost first):")
				for _, sig := range o.Stack {
					fmt.Printf("    %s\n", sig)
				}
			}
			if o.Reason != "" {
				fmt.Printf("  reason: %s\n", o.Reason)
			}
		}
		fmt.Println()
	}

	st := dep.Stats()
	fmt.Printf("summary: %d sockets tagged, %d packets enforced (%d accepted, %d dropped), %d cleansed at the border\n",
		st.SocketsTagged, st.PacketsProcessed, st.PacketsAccepted, st.PacketsDropped, st.PacketsCleansed)
}
