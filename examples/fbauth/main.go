// Fbauth reproduces the paper's §VI-C Facebook-SDK case study: the
// SolCalendar-like app uses the Facebook Graph API both for "Login with
// Facebook" (desirable) and analytics reporting (undesirable), over the
// same endpoint. Blocking the endpoint on the network breaks login;
// BorderPatrol's stack-based rules drop only the analytics flows.
//
// Run with: go run ./examples/fbauth
package main

import (
	"fmt"
	"log"

	"borderpatrol"
)

func main() {
	res, err := borderpatrol.RunFacebookCaseStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println()
	if res.Precise() {
		fmt.Println("RESULT: \"Login with Facebook\" preserved, analytics dropped —")
		fmt.Println("exactly the separation the IP blocklist cannot express.")
	} else {
		fmt.Println("RESULT: precision lost — see the table above.")
	}
}
