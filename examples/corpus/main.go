// Corpus runs a miniature Figure 3 analysis: generate a 200-app synthetic
// BUSINESS/PRODUCTIVITY corpus, exercise every app with the monkey while
// the Context Manager tags traffic, and print the IPs-of-interest
// histogram with the same-package / cross-package statistics (paper §VI-B).
//
// Run with: go run ./examples/corpus
package main

import (
	"fmt"
	"log"

	"borderpatrol"
)

func main() {
	corpusCfg := borderpatrol.DefaultCorpusConfig()
	corpusCfg.Apps = 200
	corpus, err := borderpatrol.GenerateCorpus(corpusCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d synthetic apps (seed %d)\n", len(corpus), corpusCfg.Seed)

	trackerApps := 0
	for _, ga := range corpus {
		if len(ga.Libraries) > 0 {
			trackerApps++
		}
	}
	fmt.Printf("%d apps bundle at least one third-party library\n\n", trackerApps)

	res, err := borderpatrol.RunFig3(borderpatrol.Fig3Config{
		Corpus:       corpus,
		MonkeyEvents: 2000,
		MonkeySeed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println()
	fmt.Println("Every IoI above is a destination where IP/DNS enforcement cannot")
	fmt.Println("separate functionalities — the traffic differs only in its call stack.")
}
