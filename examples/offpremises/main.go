// Offpremises demonstrates the paper's §VII deployment story for devices
// that leave the building: the BYOD framework forces work-profile traffic
// through the corporate VPN, so BorderPatrol's gateway still enforces every
// packet, while the enforcement audit trail records each decision for the
// administrators managing policy centrally.
//
// Run with: go run ./examples/offpremises
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"

	"borderpatrol"
)

func main() {
	dep, err := borderpatrol.NewDeployment(borderpatrol.DeploymentConfig{
		Policy:      `{[deny][library]["com/flurry"]}`,
		AuditWriter: os.Stdout, // JSON lines, one per enforcement decision
	})
	if err != nil {
		log.Fatal(err)
	}
	// Flush the async audit pipeline (JSON lines above) before exiting.
	defer dep.Close()

	apk := &borderpatrol.APK{
		PackageName: "com.corp.mail",
		Label:       "Corp Mail",
		Category:    "BUSINESS",
		VersionCode: 12,
		Dexes: []*borderpatrol.DexFile{{
			Classes: []borderpatrol.ClassDef{
				{
					Package: "com/corp/mail",
					Name:    "Inbox",
					Methods: []borderpatrol.MethodDef{
						{Name: "fetch", Proto: "()V", File: "Inbox.java", StartLine: 10, EndLine: 30},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []borderpatrol.MethodDef{
						{Name: "beacon", Proto: "()V", File: "Agent.java", StartLine: 5, EndLine: 20},
					},
				},
			},
		}},
	}
	ep := netip.AddrPortFrom(netip.MustParseAddr("198.18.90.1"), 443)
	app, err := dep.InstallApp(apk, []borderpatrol.Functionality{
		{
			Name:      "fetch-mail",
			Desirable: true,
			CallPath:  []borderpatrol.Frame{{Class: "com/corp/mail/Inbox", Method: "fetch", File: "Inbox.java", Line: 15}},
			Op:        borderpatrol.NetOp{Endpoint: ep, Host: "mail.corp", Method: "GET"},
		},
		{
			Name:     "analytics",
			CallPath: []borderpatrol.Frame{{Class: "com/flurry/sdk/Agent", Method: "beacon", File: "Agent.java", Line: 8}},
			Op:       borderpatrol.NetOp{Endpoint: ep, Host: "data.flurry.com", Method: "POST", PayloadBytes: 256},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintln(os.Stderr, "== employee leaves the building; work traffic now tunnels over VPN ==")
	show := func(name string, route borderpatrol.Route) {
		out, err := dep.ExerciseVia(app, name, route)
		if err != nil {
			log.Fatal(err)
		}
		status := "DELIVERED"
		if !out[0].Delivered {
			status = "DROPPED at " + out[0].DropStage
		}
		fmt.Fprintf(os.Stderr, "%-12s via %-6s -> %s\n", name, route, status)
	}

	// Work traffic over VPN: still enforced by the corporate gateway.
	show("fetch-mail", borderpatrol.RouteVPN)
	show("analytics", borderpatrol.RouteVPN)

	// A tagged packet that leaks onto the mobile path never reaches the
	// sanitizer, so the carrier's RFC 7126 filtering drops it: context
	// information cannot escape unsanitized.
	show("fetch-mail", borderpatrol.RouteMobile)

	fmt.Fprintf(os.Stderr, "\naudit trail (%d gateway decisions, JSON above):\n", len(dep.AuditTail()))
	for _, e := range dep.AuditTail() {
		fmt.Fprintf(os.Stderr, "  #%d %s -> %s  verdict=%s cause=%s\n", e.Seq, e.Src, e.Dst, e.Verdict, e.Cause)
	}
}
