package borderpatrol

import (
	"strings"
	"testing"
)

// TestDeploymentContextualPolicy drives the contextual dimension through
// the public facade: risk rules in Config.Policy.Doc, an initial device
// context, Exercise outcomes flipping with the device's reported context,
// and the bp_context_* metric families on the deployment registry.
func TestDeploymentContextualPolicy(t *testing.T) {
	dep, err := New(Config{
		Policy: PolicyConfig{
			Doc: `
{[deny][library]["com/flurry"]}
{[risk][network]["unknown"][100]}
{[risk][network]["trusted"][-50]}
{[threshold][block][100]}
`,
			InitialContext: &DeviceContext{Network: NetTrusted},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	// Trusted network: the provisioned context keeps the risk score below
	// the block threshold, so the business flow delivers.
	out, err := dep.Exercise(app, "download")
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if !o.Delivered {
			t.Fatalf("trusted download packet %d dropped: %+v", i, o)
		}
	}

	// The device roams to an unknown network. The report flows through the
	// bound context source, bumps the generation, and the next flow (and
	// any cached one) scores 100 ≥ block.
	dep.Device().ReportNetwork(NetUnknown)
	out, err = dep.Exercise(app, "download")
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, o := range out {
		if !o.Delivered {
			dropped++
			if !strings.Contains(o.Reason, "risk score") {
				t.Fatalf("drop reason = %q, want risk-score explanation", o.Reason)
			}
		}
	}
	if dropped == 0 {
		t.Fatal("no packet dropped after roaming to an unknown network")
	}

	// Roaming back re-admits.
	dep.Device().ReportNetwork(NetTrusted)
	out, err = dep.Exercise(app, "download")
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if !o.Delivered {
			t.Fatalf("re-trusted download packet %d dropped: %+v", i, o)
		}
	}

	// The context surface is observable: source stats and metric families.
	if st := dep.Context().Stats(); st.Devices != 1 || st.Invalidations["network"] != 2 {
		t.Fatalf("context stats = %+v", st)
	}
	var prom strings.Builder
	if err := dep.Metrics().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"bp_context_evaluations_total",
		"bp_context_invalidations_total",
		"bp_context_devices",
	} {
		if !strings.Contains(prom.String(), family) {
			t.Fatalf("metric family %s missing from scrape", family)
		}
	}
}

// TestDeploymentContextRoundTripsThroughParsePolicy pins the facade-level
// grammar surface: contextual rules survive ParsePolicy → FormatPolicy.
func TestDeploymentContextRoundTripsThroughParsePolicy(t *testing.T) {
	doc := `{[risk][posture]["screen-unlocked"][25]}
{[risk][travel]["impossible"][100]}
{[threshold][warn][40]}
`
	rules, err := ParsePolicy(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatPolicy(rules); got != doc {
		t.Fatalf("round trip:\n%s\nwant:\n%s", got, doc)
	}
}
