// Package borderpatrol is a faithful Go reproduction of "BORDERPATROL:
// Securing BYOD using fine-grained contextual information" (Zungur,
// Suarez-Tangil, Stringhini, Egele — DSN 2019).
//
// BorderPatrol tags every packet leaving a BYOD-provisioned Android device
// with a compressed representation of the Java call stack that created the
// socket, carried in the IPv4 IP_OPTIONS header field. An on-network
// Policy Enforcer decodes the tag against a signature database produced by
// an Offline Analyzer and enforces fine-grained rules — per app function,
// not per IP or per app — before a Packet Sanitizer strips the tag from
// conforming traffic at the corporate border.
//
// This package is the public facade over the full system. A Deployment
// wires together the simulated provisioned device (patched kernel,
// Xposed-style hooks, Context Manager), the enterprise gateway (enforcer +
// sanitizer on netfilter queues), and a virtual-time network:
//
//	dep, err := borderpatrol.New(borderpatrol.Config{
//		Policy: borderpatrol.PolicyConfig{Doc: `{[deny][library]["com/flurry"]}`},
//	})
//	...
//	app, err := dep.InstallApp(apk, functionality)
//	verdicts, err := dep.Exercise(app, "analytics")
//
// A Fleet scales the same wiring out to N gateways on one network, each
// fronting its own subnet and enforcing only its policy groups (see
// NewFleet); a single Deployment is the N=1 special case.
//
// The reproduction harnesses for every table and figure in the paper's
// evaluation live behind RunFig3, RunValidation, RunCloudCaseStudy,
// RunFacebookCaseStudy, RunFig4, RunFlowSize and RunReplay.
package borderpatrol

import (
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"strings"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/android"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/audit"
	"borderpatrol/internal/contextmgr"
	"borderpatrol/internal/dataplane"
	"borderpatrol/internal/devctx"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/experiments"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/httpsim"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/kernel"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
	"borderpatrol/internal/sanitizer"
)

// Re-exported core types. The aliases give external importers access to
// the full policy grammar, app model and experiment results without
// reaching into internal packages.
type (
	// Rule is one policy rule {[action][level][target]}.
	Rule = policy.Rule
	// Action is a rule action (Allow or Deny).
	Action = policy.Action
	// Level is an enforcement level (Hash < Library < Class < Method).
	Level = policy.Level
	// Verdict is a policy decision for one packet.
	Verdict = policy.Verdict
	// APK is a simulated Android application package.
	APK = dex.APK
	// DexFile is one classes.dex within an APK.
	DexFile = dex.File
	// ClassDef is a class definition inside a dex file.
	ClassDef = dex.ClassDef
	// MethodDef is a method definition with debug line info.
	MethodDef = dex.MethodDef
	// Signature is a smali-style method signature.
	Signature = dex.Signature
	// Frame is one Java stack-trace frame.
	Frame = dex.Frame
	// Functionality is one user-reachable app behaviour.
	Functionality = android.Functionality
	// NetOp is the network side effect of a functionality.
	NetOp = android.NetOp
	// App is an installed application on the provisioned device.
	App = android.App
	// Packet is an IPv4 packet.
	Packet = ipv4.Packet
	// GeneratedApp is a synthetic corpus entry.
	GeneratedApp = apkgen.App
	// CorpusConfig controls corpus generation.
	CorpusConfig = apkgen.Config
	// DeviceContext is the per-device half of the contextual policy
	// dimension: network trust class, posture, apparent travel velocity.
	DeviceContext = policy.DeviceContext
	// NetworkClass is a device's network trust class.
	NetworkClass = policy.NetworkClass
	// ContextSource is a deployment's device-context store: per-device
	// context keyed by address, plus the generation counter the enforcer
	// folds into its flow-cache key so any context change invalidates the
	// affected cached verdicts. See Deployment.Context.
	ContextSource = devctx.Source
)

// Policy grammar constants.
const (
	Allow = policy.Allow
	Deny  = policy.Deny

	LevelHash    = policy.LevelHash
	LevelLibrary = policy.LevelLibrary
	LevelClass   = policy.LevelClass
	LevelMethod  = policy.LevelMethod

	VerdictAllow = policy.VerdictAllow
	VerdictDrop  = policy.VerdictDrop

	// Network trust classes for contextual risk rules
	// ({[risk][network]["trusted"][-30]} and friends).
	NetUnknown  = policy.NetUnknown
	NetTrusted  = policy.NetTrusted
	NetCellular = policy.NetCellular
)

// ParseNetworkClass parses a network trust class keyword
// ("trusted", "cellular", "unknown").
func ParseNetworkClass(s string) (NetworkClass, error) {
	return policy.ParseNetworkClass(s)
}

// ParsePolicy parses a policy document in the paper's grammar (§IV-B).
func ParsePolicy(doc string) ([]Rule, error) {
	return policy.ParsePolicyString(doc)
}

// PolicySource is a pluggable policy backend feeding a deployment's engine:
// a file with hot reload, an HTTP endpoint with conditional fetches, or a
// static inline document. See DeploymentConfig.PolicySource.
type PolicySource = policystore.Source

// PolicyStoreStats snapshots a deployment's hot-reload policy store.
type PolicyStoreStats = policystore.Stats

// FailMode selects the degraded posture when the policy store cannot reach
// a fresh policy past its staleness deadline: keep serving the last-good
// rules (FailStatic), admit everything (FailOpen), or deny everything
// (FailClosed). See DeploymentConfig.PolicyMaxStale.
type FailMode = policystore.FailMode

// Fail modes.
const (
	FailStatic = policystore.FailStatic
	FailOpen   = policystore.FailOpen
	FailClosed = policystore.FailClosed
)

// ParseFailMode parses a fail-mode name ("static", "open"/"fail-open",
// "closed"/"fail-closed"); the empty string selects FailStatic.
func ParseFailMode(s string) (FailMode, error) {
	return policystore.ParseFailMode(s)
}

// FaultPlan is a deterministic, seeded wire-fault specification: per-packet
// probabilities for drop, duplication, reordering, virtual-time delay,
// payload corruption and truncation. Install one with Deployment.SetFaults
// (or DeploymentConfig.Faults) to subject the network to chaos; the
// zero-probability plan leaves the wire perfect.
type FaultPlan = netsim.FaultPlan

// FaultStats counts injected wire faults.
type FaultStats = netsim.FaultStats

// FilePolicySource watches a policy file: edits hot-swap atomically, a
// malformed edit keeps the last-good rules serving.
func FilePolicySource(path string) PolicySource {
	return policystore.NewFileSource(path)
}

// HTTPPolicySource polls a policy endpoint with ETag conditional fetches.
func HTTPPolicySource(url string) PolicySource {
	return policystore.NewHTTPSource(url, nil)
}

// StaticPolicySource wraps an inline policy document as a PolicySource.
func StaticPolicySource(doc string) PolicySource {
	return policystore.NewStaticSource(doc)
}

// FormatPolicy renders rules back into a parseable document.
func FormatPolicy(rules []Rule) string {
	return policy.FormatPolicy(rules)
}

// GenerateCorpus builds the synthetic Play-store corpus (§VI-A stand-in).
func GenerateCorpus(cfg CorpusConfig) ([]*GeneratedApp, error) {
	return apkgen.Generate(cfg)
}

// DefaultCorpusConfig is the calibrated 2,000-app configuration.
func DefaultCorpusConfig() CorpusConfig {
	return apkgen.DefaultConfig()
}

// Deployment is a running BorderPatrol installation: one provisioned
// device, the signature database, and an enterprise gateway on a network.
// In a Fleet the network is shared between sibling deployments and each
// owns just its gateway; stand-alone, the deployment owns both.
type Deployment struct {
	name      string
	device    *android.Device
	manager   *contextmgr.Manager
	db        *analyzer.Database
	engine    *policy.Engine
	enforcer  *enforcer.Enforcer
	sanitizer *sanitizer.Sanitizer
	network   *netsim.Network
	gateway   *netsim.Gateway
	audit     *audit.Log
	policy    *policystore.Store
	context   *devctx.Source
	metrics   *metrics.Registry
}

// MetricsRegistry holds every component's registered instruments and
// renders them in the Prometheus text format. See Deployment.Metrics.
type MetricsRegistry = metrics.Registry

// Route selects how packets reach the network (paper §VII): on-premises
// through the gateway, off-premises work traffic over VPN, personal
// traffic over the mobile network.
type Route = netsim.Route

// Routes.
const (
	RouteDirect = netsim.RouteDirect
	RouteVPN    = netsim.RouteVPN
	RouteMobile = netsim.RouteMobile
)

// AuditEntry is one enforcement decision record.
type AuditEntry = audit.Entry

// New provisions a device with the Context Manager, builds the policy
// engine, and stands up the gateway pipeline. It is the single-gateway
// constructor; NewFleet runs the same wiring once per gateway on a shared
// network.
func New(cfg Config) (*Deployment, error) {
	// The network comes up before the policy store so the store's staleness
	// deadline can be measured on the same virtual clock everything else
	// runs on.
	network := netsim.NewNetwork(netsim.ModeTAP, netsim.DefaultLatencyModel())
	if cfg.Net.Faults != nil {
		network.InstallFaults(*cfg.Net.Faults)
	}
	d, err := build(cfg, network, "")
	if err != nil {
		return nil, err
	}
	// N=1: the gateway fronts every source (the zero-route special case of
	// the fleet's subnet routing), and the deployment's registry carries
	// the network-wide fault counters too.
	network.Gateway = d.gateway
	network.RegisterMetrics(d.metrics)
	if d.policy != nil {
		d.policy.Start()
	}
	return d, nil
}

// build assembles one deployment on the given (possibly shared) network:
// engine, policy store (loaded but not yet started), device, audit,
// enforcer, sanitizer, gateway, and a per-deployment metrics registry.
// The caller wires the gateway into the network (Gateway field or subnet
// route), registers network-wide metrics wherever they belong, and starts
// the store once construction can no longer fail.
func build(cfg Config, network *netsim.Network, name string) (*Deployment, error) {
	if cfg.Policy.Source != nil && strings.TrimSpace(cfg.Policy.Doc) != "" {
		return nil, errors.New("borderpatrol: PolicyConfig.Doc and PolicyConfig.Source are mutually exclusive")
	}
	var rules []Rule
	if strings.TrimSpace(cfg.Policy.Doc) != "" {
		var err error
		rules, err = policy.ParsePolicyString(cfg.Policy.Doc)
		if err != nil {
			return nil, fmt.Errorf("borderpatrol: %w", err)
		}
	}
	def := cfg.Policy.DefaultVerdict
	if def == 0 {
		def = policy.VerdictAllow
	}
	engine, err := policy.NewEngine(rules, def)
	if err != nil {
		return nil, fmt.Errorf("borderpatrol: %w", err)
	}

	var store *policystore.Store
	if cfg.Policy.Source != nil {
		storeCfg := policystore.Config{
			Source:       cfg.Policy.Source,
			Engine:       engine,
			Poll:         cfg.Policy.Poll,
			WatchTimeout: cfg.Policy.WatchTimeout,
			MaxStale:     cfg.Policy.MaxStale,
			FailMode:     cfg.Policy.FailMode,
		}
		if cfg.Policy.MaxStale > 0 {
			storeCfg.Now = network.Clock.Now
		}
		store, err = policystore.New(storeCfg)
		if err != nil {
			return nil, fmt.Errorf("borderpatrol: %w", err)
		}
		// The initial load is synchronous and fatal: there is no last-good
		// rule set to fall back to yet, and silently enforcing an empty
		// policy would fail open. The background poller starts only once
		// construction can no longer fail, so error returns leak nothing.
		if err := store.Load(); err != nil {
			return nil, fmt.Errorf("borderpatrol: initial policy: %w", err)
		}
	}

	hardened := true
	if cfg.Net.HardenedKernel != nil {
		hardened = *cfg.Net.HardenedKernel
	}
	addr := cfg.Net.DeviceAddr
	if !addr.IsValid() {
		addr = netip.MustParseAddr("10.66.0.2")
	}
	device := android.NewDevice(android.Config{
		Addr: addr,
		Kernel: kernel.Config{
			AllowUnprivilegedIPOptions: true,
			SetOptionsOncePerSocket:    hardened,
		},
		XposedInstalled: true,
	})
	manager := contextmgr.New(device)
	if err := device.LoadModule(manager); err != nil {
		return nil, fmt.Errorf("borderpatrol: %w", err)
	}

	db := analyzer.NewDatabase()
	auditLog := audit.NewWithConfig(audit.Config{
		Writer:   cfg.Audit.Writer,
		TailCap:  256,
		QueueCap: cfg.Audit.QueueCap,
	})
	// Every deployment carries a device-context source: risk rules read it
	// on the SYN/cache-miss path, and its generation counter keys cached
	// verdicts so context changes invalidate them. Without risk rules it is
	// inert (ContextActive gates all lookups).
	ctxSrc := devctx.NewSource(network.Clock)
	device.BindContext(ctxSrc)
	if cfg.Policy.InitialContext != nil {
		ctxSrc.Provision(addr, *cfg.Policy.InitialContext)
	}

	enfCfg := enforcer.Config{
		AllowUntagged: cfg.Policy.AllowUntagged,
		Audit:         auditLog,
		Context:       ctxSrc,
		Clock:         network.Clock,
	}
	if cfg.Flow.CacheSize >= 0 {
		ttl := cfg.Flow.TTL
		if ttl == 0 {
			ttl = time.Minute // virtual time; keep-alive flows stay warm
		}
		enfCfg.Flows = enforcer.NewFlowCache(flowtable.Config{
			Capacity: cfg.Flow.CacheSize, // 0 = flowtable default
			TTL:      ttl,
			Clock:    network.Clock,
			// Negative-cache admission guard: unique-flow floods (SYN
			// floods of crafted tags) are turned away at a per-shard
			// recent-miss ring instead of evicting live flows.
			MissRing: 64,
		})
	}
	enf := enforcer.New(enfCfg, db, engine)
	san := sanitizer.New(sanitizer.Config{})
	var dp *dataplane.Dataplane
	if cfg.Flow.Dataplane && enfCfg.Flows != nil {
		cores := cfg.Flow.Workers
		if cores <= 0 {
			cores = runtime.GOMAXPROCS(0)
		}
		dp = dataplane.New(dataplane.Config{
			Cores:   cores,
			Entries: cfg.Flow.DataplaneEntries,
			TTL:     cfg.Flow.TTL,
			Clock:   network.Clock,
		}, enf)
	}
	gw := netsim.NewGateway(netsim.GatewayConfig{
		Enforcer:  enf,
		Sanitizer: san,
		Workers:   cfg.Flow.Workers,
		Clock:     network.Clock,
		Dataplane: dp,
	})

	reg := metrics.NewRegistry()
	enf.RegisterMetrics(reg)
	gw.RegisterMetrics(reg)
	auditLog.RegisterMetrics(reg)
	if store != nil {
		store.RegisterMetrics(reg)
	}

	return &Deployment{
		name:      name,
		device:    device,
		manager:   manager,
		db:        db,
		engine:    engine,
		enforcer:  enf,
		sanitizer: san,
		network:   network,
		gateway:   gw,
		audit:     auditLog,
		policy:    store,
		context:   ctxSrc,
		metrics:   reg,
	}, nil
}

// Metrics exposes the deployment's metrics registry: every component's
// counters, gauges and latency histograms, renderable with
// WritePrometheus or servable with metrics-package Handler.
func (d *Deployment) Metrics() *MetricsRegistry { return d.metrics }

// Close stops the policy store's hot-reload poller (when a PolicySource is
// configured), then flushes and stops the asynchronous audit pipeline
// (flush-on-close) and reports its sticky write error, if any.
func (d *Deployment) Close() error {
	if d.policy != nil {
		d.policy.Close()
	}
	return d.audit.Close()
}

// InstallApp analyzes the apk into the signature database (the Offline
// Analyzer step) and installs it in the device's work profile. Servers for
// every functionality endpoint are registered automatically.
func (d *Deployment) InstallApp(apk *APK, funcs []Functionality) (*App, error) {
	if err := d.db.Add(apk); err != nil {
		if !errors.Is(err, analyzer.ErrDuplicateEntry) {
			return nil, fmt.Errorf("borderpatrol: analyze: %w", err)
		}
	}
	app, err := d.device.InstallApp(apk, funcs, android.ProfileWork)
	if err != nil {
		return nil, fmt.Errorf("borderpatrol: %w", err)
	}
	for _, f := range funcs {
		addr := f.Op.Endpoint.Addr()
		if _, ok := d.network.ServerAt(addr); !ok {
			d.network.AddServer(&netsim.Server{
				Addr:    addr,
				Name:    f.Op.Host,
				Handler: httpsim.StaticHandler(httpsim.StaticPage()),
			})
		}
	}
	return app, nil
}

// InstallGenerated installs a corpus-generated app.
func (d *Deployment) InstallGenerated(ga *GeneratedApp) (*App, error) {
	return d.InstallApp(ga.APK, ga.Functionalities)
}

// SetPolicy replaces the active rules (central reconfiguration, §IV). With
// a PolicySource configured, prefer updating the backend: the source's
// next reload overrides anything set here.
func (d *Deployment) SetPolicy(doc string) error {
	rules, err := policy.ParsePolicyString(doc)
	if err != nil {
		return fmt.Errorf("borderpatrol: %w", err)
	}
	return d.engine.SetRules(rules)
}

// ReloadPolicy runs one synchronous policy-store reload cycle: fetch the
// backend, and — when the document changed — compile and atomically swap
// the rules. Reports whether a new rule set was applied. On error the
// last-good rules keep serving (the failure is visible in Stats). Returns
// an error when no PolicySource is configured.
func (d *Deployment) ReloadPolicy() (applied bool, err error) {
	if d.policy == nil {
		return false, errors.New("borderpatrol: no PolicySource configured")
	}
	return d.policy.Reload()
}

// PolicyStoreStats snapshots the hot-reload policy store (zero value when
// no PolicySource is configured).
func (d *Deployment) PolicyStoreStats() PolicyStoreStats {
	return d.policy.Stats()
}

// SetFaults installs (or replaces) a deterministic wire-fault plan on the
// deployment's network. The plan applies to gateway-bound traffic; VPN and
// mobile routes bypass it, like chaos injected on the corporate segment.
func (d *Deployment) SetFaults(plan FaultPlan) {
	d.network.InstallFaults(plan)
}

// ClearFaults restores the perfect wire (and the fault-free fast path).
func (d *Deployment) ClearFaults() {
	d.network.ClearFaults()
}

// FaultStats counts the faults injected so far (zero value when no plan
// was ever installed).
func (d *Deployment) FaultStats() FaultStats {
	return d.network.FaultStats()
}

// RestartGateway models a gateway crash and reboot: the flow-verdict
// cache, connection tracker and netfilter counters are discarded, so the
// next packet of every live flow re-resolves through the full pipeline.
// Control-plane state (policy engine, signature database) survives.
func (d *Deployment) RestartGateway() {
	d.gateway.Restart()
}

// SweepIdle runs one garbage-collection sweep over the gateway's dataplane
// tables: connections idle longer than idle leave the conntrack (their FIN
// was lost), and TTL-expired flow-cache entries are reclaimed. Returns
// what each sweep freed.
func (d *Deployment) SweepIdle(idle time.Duration) (conns, flows int) {
	return d.gateway.GC(idle)
}

// Outcome reports what happened to one packet an app functionality sent.
type Outcome struct {
	// Delivered reports whether the packet reached its destination.
	Delivered bool
	// DropStage names where it died ("gateway", "border-router", ...).
	DropStage string
	// Stack is the decoded context when the enforcer inspected the packet.
	Stack []Signature
	// Reason is the policy engine's explanation, when it ran.
	Reason string
}

// Exercise invokes an app functionality end to end — device, tagging,
// gateway, border — and returns one Outcome per emitted packet.
func (d *Deployment) Exercise(app *App, functionality string) ([]Outcome, error) {
	return d.ExerciseVia(app, functionality, RouteDirect)
}

// ExerciseVia is Exercise over an explicit route: RouteDirect for
// on-premises traffic, RouteVPN for off-premises work traffic tunnelled to
// the gateway, RouteMobile for traffic bypassing the corporate network.
func (d *Deployment) ExerciseVia(app *App, functionality string, route Route) ([]Outcome, error) {
	res, err := app.Invoke(functionality)
	if err != nil {
		return nil, fmt.Errorf("borderpatrol: %w", err)
	}
	var deliveries []netsim.Delivery
	if route == RouteDirect {
		// On-premises bursts ride the batched per-core gateway drain: one
		// queue transition for the invocation's packets, flow-cache hits
		// for every packet after a flow's first.
		deliveries = d.network.DeliverBatch(res.Packets)
	} else {
		deliveries = make([]netsim.Delivery, 0, len(res.Packets))
		for _, pkt := range res.Packets {
			deliveries = append(deliveries, d.network.DeliverRoute(pkt, route))
		}
	}
	out := make([]Outcome, 0, len(res.Packets))
	for _, del := range deliveries {
		o := Outcome{Delivered: del.Delivered}
		if !del.Delivered {
			o.DropStage = del.Stage.String()
		}
		if del.Enforcement != nil {
			// The enforcer records each decision on the audit pipeline
			// itself (per packet on the scalar path, once per burst on the
			// batched path); here we only surface the outcome.
			o.Stack = del.Enforcement.Stack
			if del.Enforcement.Decision != nil {
				o.Reason = del.Enforcement.Decision.Reason
			} else {
				o.Reason = del.Enforcement.Cause.String()
			}
		}
		out = append(out, o)
	}
	return out, nil
}

// AuditTail returns the most recent enforcement audit entries (flushing
// the asynchronous pipeline first, so everything recorded is visible).
func (d *Deployment) AuditTail() []AuditEntry {
	return d.audit.Tail()
}

// Device exposes the provisioned device (advanced scenarios and tests).
func (d *Deployment) Device() *android.Device { return d.device }

// Context exposes the deployment's device-context source. Update it (or
// let the device's Report* methods update it) to change what contextual
// risk rules see; every effective change bumps the context generation and
// invalidates the cached verdicts of affected flows on their next packet.
func (d *Deployment) Context() *ContextSource { return d.context }

// DeploymentStats aggregates component counters.
//
// Deprecated: the metrics registry is the canonical observability surface
// — Deployment.Metrics (one gateway) and Fleet.Metrics (every gateway,
// one scrape) expose the same counters and more, queryable by family and
// label and renderable as Prometheus text. DeploymentStats remains as a
// thin view computed from the registry snapshot (plus the few componental
// readings, like tagger counters, that have no metric family yet).
type DeploymentStats struct {
	SocketsTagged    uint64
	TagFailures      uint64
	PacketsProcessed uint64
	PacketsAccepted  uint64
	PacketsDropped   uint64
	PacketsCleansed  uint64
	// PolicyEvaluations counts packets that reached the compiled policy
	// engine (tagged, known app, decodable stack).
	PolicyEvaluations uint64
	// PolicyDefaultHits counts evaluations decided by the default verdict
	// rather than an explicit rule.
	PolicyDefaultHits uint64
	// FlowCacheHits counts packets answered by the per-flow verdict cache
	// (plus the batch drain's same-flow memo) without decoding anything.
	FlowCacheHits uint64
	// FlowCacheMisses counts packets that paid the full pipeline and
	// (re)filled the cache.
	FlowCacheMisses uint64
	// FlowCacheEvictions counts flows evicted under capacity pressure.
	FlowCacheEvictions uint64
	// FlowNegCacheDrops counts inserts turned away by the flow table's
	// negative-cache admission guard — the unique-flow-flood (SYN flood)
	// signature: first-seen flows hitting a full shard are noted in a
	// per-shard recent-miss ring instead of evicting a live flow.
	FlowNegCacheDrops uint64
	// FlowsLive is the number of flows currently cached.
	FlowsLive int
	// ConnsEstablished counts TCP connections the gateway's conntrack saw
	// open (SYN accepted); ConnsClosed counts FIN/RST teardowns — each of
	// which deleted the flow's cached verdict immediately. ConnsOpen is
	// the current tracked count.
	ConnsEstablished uint64
	ConnsClosed      uint64
	ConnsOpen        int
	// AuditRecorded counts decisions accepted by the async audit pipeline.
	AuditRecorded uint64
	// AuditDropped counts decisions shed under audit backpressure (bounded
	// queue full) — enforcement never blocks on the audit trail.
	AuditDropped uint64
	// AuditPending is the approximate number of audit entries not yet
	// drained to the writer/tail.
	AuditPending uint64
	// PolicyReloads counts applied policy swaps from the configured
	// PolicySource, including the initial load (0 without a source).
	PolicyReloads uint64
	// PolicyReloadFailures counts candidate policies rejected by a fetch,
	// parse, or compile error; each rejection left the last-good rules
	// serving.
	PolicyReloadFailures uint64
	// PolicyVersion identifies the active policy revision ("" without a
	// source).
	PolicyVersion string
	// PolicyLastError describes the most recent rejected candidate (""
	// after a clean reload).
	PolicyLastError string
	// PolicyDegraded reports whether the store is past its staleness
	// deadline and a fail-open/fail-closed override is active;
	// PolicyDegradedEnters counts how many times that happened, and
	// PolicyDegradedHits counts packets decided by the override.
	PolicyDegraded       bool
	PolicyDegradedEnters uint64
	PolicyDegradedHits   uint64
	// PolicyLastGoodAge is how long ago the store last completed a healthy
	// reload cycle (0 without a source).
	PolicyLastGoodAge time.Duration
	// ConnsTimeWait is the number of recently-closed connections parked in
	// the conntrack's TIME_WAIT analogue; ConnsDupCloses counts duplicate
	// FIN/RST deliveries absorbed there, ConnsLateSYNs counts SYNs that
	// arrived for a connection still in TIME_WAIT (not resurrected), and
	// ConnsIdleReclaimed counts half-open connections reclaimed by
	// SweepIdle after their FIN was lost.
	ConnsTimeWait      int
	ConnsDupCloses     uint64
	ConnsLateSYNs      uint64
	ConnsIdleReclaimed uint64
	// GatewayRestarts counts RestartGateway calls.
	GatewayRestarts uint64
	// WireFaults counts faults injected by the active FaultPlan (zero
	// value when none was installed).
	WireFaults FaultStats
}

// statsView indexes one registry snapshot by family name and label set so
// DeploymentStats fields read like metric queries.
type statsView map[string]float64

func snapshotView(reg *metrics.Registry) statsView {
	v := make(statsView)
	for _, s := range reg.Snapshot() {
		if s.Hist != nil {
			continue
		}
		key := s.Name
		for _, l := range s.Labels {
			key += ";" + l.Key + "=" + l.Value
		}
		v[key] += s.Value
	}
	return v
}

// u reads a counter series (0 when the family was never registered, e.g.
// flow caching disabled or no policy source).
func (v statsView) u(key string) uint64 { return uint64(v[key]) }

// Stats snapshots counters across the deployment. Everything with a
// metric family is computed from the same registry snapshot that a
// Prometheus scrape would see; only series-less readings (tagger and
// sanitizer counters, policy version strings) come from the components.
//
// Deprecated: prefer Deployment.Metrics (see DeploymentStats).
func (d *Deployment) Stats() DeploymentStats {
	cm := d.manager.Stats()
	sn := d.sanitizer.Stats()
	ps := d.policy.Stats()
	v := snapshotView(d.metrics)
	return DeploymentStats{
		SocketsTagged:        cm.SocketsTagged,
		TagFailures:          cm.TagFailures,
		PacketsProcessed:     v.u("bp_enforcer_verdicts_total;decision=allow") + v.u("bp_enforcer_verdicts_total;decision=drop"),
		PacketsAccepted:      v.u("bp_enforcer_verdicts_total;decision=allow"),
		PacketsDropped:       v.u("bp_enforcer_verdicts_total;decision=drop"),
		PacketsCleansed:      sn.Cleansed,
		PolicyEvaluations:    v.u("bp_policy_evaluations_total"),
		PolicyDefaultHits:    v.u("bp_policy_default_hits_total"),
		FlowCacheHits:        v.u("bp_flowtable_hits_total") + v.u("bp_enforcer_batch_memo_hits_total"),
		FlowCacheMisses:      v.u("bp_flowtable_misses_total"),
		FlowCacheEvictions:   v.u("bp_flowtable_evictions_total"),
		FlowNegCacheDrops:    v.u("bp_flowtable_admission_drops_total"),
		FlowsLive:            int(v["bp_flowtable_live"]),
		ConnsEstablished:     v.u("bp_conntrack_transitions_total;kind=established"),
		ConnsClosed:          v.u("bp_conntrack_transitions_total;kind=closed"),
		ConnsOpen:            int(v["bp_conntrack_connections;state=open"]),
		AuditRecorded:        v.u("bp_audit_recorded_total"),
		AuditDropped:         v.u("bp_audit_dropped_total"),
		AuditPending:         v.u("bp_audit_queue_depth"),
		PolicyReloads:        v.u("bp_policy_reloads_total;outcome=applied"),
		PolicyReloadFailures: v.u("bp_policy_reloads_total;outcome=failed"),
		PolicyVersion:        ps.Version,
		PolicyLastError:      ps.LastError,
		PolicyDegraded:       ps.Degraded,
		PolicyDegradedEnters: v.u("bp_policy_degraded_enters_total"),
		PolicyDegradedHits:   v.u("bp_policy_degraded_hits_total"),
		PolicyLastGoodAge:    ps.LastGoodAge,
		ConnsTimeWait:        int(v["bp_conntrack_connections;state=time_wait"]),
		ConnsDupCloses:       v.u("bp_conntrack_transitions_total;kind=dup_close"),
		ConnsLateSYNs:        v.u("bp_conntrack_transitions_total;kind=late_syn"),
		ConnsIdleReclaimed:   v.u("bp_conntrack_transitions_total;kind=idle_reclaimed"),
		GatewayRestarts:      v.u("bp_gateway_restarts_total"),
		WireFaults:           d.network.FaultStats(),
	}
}

// Experiment entry points (one per paper table/figure). See EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
var (
	// RunFig3 reproduces Figure 3 (IoI histogram) and the §VI-B stats.
	RunFig3 = experiments.RunFig3
	// RunValidation reproduces the §VI-B1 tracker-blocking validation.
	RunValidation = experiments.RunValidation
	// RunCloudCaseStudy reproduces the §VI-C Dropbox/Box comparison.
	RunCloudCaseStudy = experiments.RunCloudCaseStudy
	// RunFacebookCaseStudy reproduces the §VI-C SolCalendar comparison.
	RunFacebookCaseStudy = experiments.RunFacebookCaseStudy
	// RunFig4 reproduces the Figure 4 latency series.
	RunFig4 = experiments.RunFig4
	// RunKeepAliveAmortization reproduces the §VI-D amortization argument.
	RunKeepAliveAmortization = experiments.RunKeepAliveAmortization
	// RunFlowSize reproduces the §VII flow-size and evasion analysis.
	RunFlowSize = experiments.RunFlowSize
	// RunReplay reproduces the §VII tag-replay mitigation.
	RunReplay = experiments.RunReplay
	// RunReloadUnderLoad stress-tests central reconfiguration (§IV): policy
	// swaps under saturating traffic, proving packets never observe a torn
	// rule set and malformed candidates keep the last-good rules serving.
	RunReloadUnderLoad = experiments.RunReloadUnderLoad
	// RunDNSResolution pushes tagged DNS-over-UDP queries through the
	// gateway end to end — the transport layer's first non-HTTP workload.
	RunDNSResolution = experiments.RunDNSResolution
	// RunSoak drives hours of virtual-time churn — wire faults, policy
	// swaps with malformed candidates, fail-closed outages, gateway
	// restarts, idle GC — and asserts bounded memory, zero leaks, and the
	// fail-safe invariant (no fault sequence converts a deny into a
	// delivery).
	RunSoak = experiments.RunSoak
	// RunPipelineBench measures the instrumented enforcement paths and
	// scrapes their latency histograms (machine-readable via WriteJSON).
	RunPipelineBench = experiments.RunPipelineBench
	// RunFleetBench drives the multi-gateway fleet workload: N sharded
	// gateways, pooled devices, mixed HTTP+DNS traffic, a mid-run
	// fleet-wide policy push, and leak accounting (machine-readable via
	// WriteJSON — BENCH_fleet.json).
	RunFleetBench = experiments.RunFleet
)

// Experiment configuration re-exports.
type (
	// Fig3Config parameterizes the corpus experiment.
	Fig3Config = experiments.Fig3Config
	// ValidationConfig parameterizes the validation experiment.
	ValidationConfig = experiments.ValidationConfig
	// Fig4Options sizes the latency stress test.
	Fig4Options = experiments.Fig4Options
	// ReloadConfig parameterizes the reload-under-load experiment.
	ReloadConfig = experiments.ReloadConfig
	// ReloadResult reports the reload-under-load experiment.
	ReloadResult = experiments.ReloadResult
	// DNSResolutionResult reports the DNS-over-UDP workload.
	DNSResolutionResult = experiments.DNSResolutionResult
	// SoakConfig parameterizes the chaos soak harness.
	SoakConfig = experiments.SoakConfig
	// SoakResult reports a soak run (Check asserts its invariants).
	SoakResult = experiments.SoakResult
	// SoakSnapshot is one in-run resource reading of a soak run.
	SoakSnapshot = experiments.SoakSnapshot
	// PipelineBenchConfig sizes the pipeline benchmark.
	PipelineBenchConfig = experiments.PipelineBenchConfig
	// PipelineBenchResult reports the pipeline benchmark.
	PipelineBenchResult = experiments.PipelineBenchResult
	// FleetRunConfig sizes the fleet benchmark (RunFleetBench).
	FleetRunConfig = experiments.FleetRunConfig
	// FleetBenchResult reports the fleet benchmark (Check asserts zero
	// policy leaks and one-watch-round propagation).
	FleetBenchResult = experiments.FleetBenchResult
	// FleetGatewayReport is one gateway's slice of a fleet benchmark.
	FleetGatewayReport = experiments.FleetGatewayReport
)

// Default experiment configurations.
var (
	DefaultFig3Config       = experiments.DefaultFig3Config
	DefaultValidationConfig = experiments.DefaultValidationConfig
	DefaultFig4Options      = experiments.DefaultFig4Options
	DefaultReloadConfig     = experiments.DefaultReloadConfig
	DefaultSoakConfig       = experiments.DefaultSoakConfig
	DefaultFleetRunConfig   = experiments.DefaultFleetRunConfig
)
