module borderpatrol

go 1.22
