package borderpatrol

import (
	"net/netip"
	"strings"
	"testing"
)

func demoAPK() *APK {
	return &APK{
		PackageName: "com.corp.files",
		Label:       "CorpFiles",
		Category:    "BUSINESS",
		VersionCode: 1,
		Dexes: []*DexFile{{
			Classes: []ClassDef{
				{
					Package: "com/corp/files",
					Name:    "SyncEngine",
					Methods: []MethodDef{
						{Name: "download", Proto: "()V", File: "S.java", StartLine: 10, EndLine: 30},
						{Name: "upload", Proto: "()V", File: "S.java", StartLine: 40, EndLine: 60},
					},
				},
				{
					Package: "com/flurry/sdk",
					Name:    "Agent",
					Methods: []MethodDef{
						{Name: "beacon", Proto: "()V", File: "A.java", StartLine: 5, EndLine: 20},
					},
				},
			},
		}},
	}
}

func demoFuncs() []Functionality {
	ep := netip.AddrPortFrom(netip.MustParseAddr("93.184.216.34"), 443)
	return []Functionality{
		{
			Name:      "download",
			Desirable: true,
			CallPath:  []Frame{{Class: "com/corp/files/SyncEngine", Method: "download", File: "S.java", Line: 12}},
			Op:        NetOp{Endpoint: ep, Host: "files.corp", Method: "GET"},
		},
		{
			Name:     "upload",
			CallPath: []Frame{{Class: "com/corp/files/SyncEngine", Method: "upload", File: "S.java", Line: 45}},
			Op:       NetOp{Endpoint: ep, Host: "files.corp", Method: "PUT", PayloadBytes: 1024},
		},
		{
			Name:     "analytics",
			CallPath: []Frame{{Class: "com/flurry/sdk/Agent", Method: "beacon", File: "A.java", Line: 8}},
			Op:       NetOp{Endpoint: ep, Host: "data.flurry.com", Method: "POST", PayloadBytes: 128},
		},
	}
}

func TestDeploymentEndToEnd(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{
		Policy: `
// block the tracker library and the upload method
{[deny][library]["com/flurry"]}
{[deny][method]["Lcom/corp/files/SyncEngine;->upload()V"]}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	// Download flows: one TCP connection, three packets (SYN, request,
	// FIN), every one delivered and attributed to the download context.
	out, err := dep.Exercise(app, "download")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("download emitted %d outcomes, want 3 (SYN + request + FIN)", len(out))
	}
	for i, o := range out {
		if !o.Delivered {
			t.Fatalf("download packet %d not delivered: %+v", i, o)
		}
		if len(o.Stack) == 0 || o.Stack[0].Name != "download" {
			t.Fatalf("decoded stack %d = %v", i, o.Stack)
		}
	}

	// Upload dropped by the method rule — same endpoint, same app. The
	// whole connection dies: the SYN already carries the upload context.
	out, err = dep.Exercise(app, "upload")
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Delivered {
			t.Fatalf("upload packet %d not blocked", i)
		}
		if o.DropStage != "gateway" {
			t.Fatalf("packet %d drop stage = %s", i, o.DropStage)
		}
		if !strings.Contains(o.Reason, "deny rule") {
			t.Fatalf("packet %d reason = %q", i, o.Reason)
		}
	}

	// Analytics dropped by the library rule.
	out, err = dep.Exercise(app, "analytics")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Delivered {
		t.Fatal("analytics not blocked")
	}

	st := dep.Stats()
	if st.SocketsTagged != 3 || st.PacketsDropped != 6 || st.PacketsAccepted != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PacketsCleansed != 3 {
		t.Fatalf("sanitizer cleansed %d packets, want 3 (the delivered connection)", st.PacketsCleansed)
	}
	// The download connection's FIN tore its flow down via conntrack.
	if st.ConnsEstablished != 1 || st.ConnsClosed != 1 {
		t.Fatalf("conntrack stats = est %d closed %d, want 1/1", st.ConnsEstablished, st.ConnsClosed)
	}
}

func TestDeploymentReconfiguration(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}
	out, err := dep.Exercise(app, "analytics")
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Delivered {
		t.Fatal("empty policy must allow")
	}
	if err := dep.SetPolicy(`{[deny][library]["com/flurry"]}`); err != nil {
		t.Fatal(err)
	}
	out, err = dep.Exercise(app, "analytics")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Delivered {
		t.Fatal("reconfigured policy not applied")
	}
}

func TestDeploymentErrors(t *testing.T) {
	if _, err := NewDeployment(DeploymentConfig{Policy: "{[bogus]}"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	dep, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.SetPolicy("{[bogus]}"); err == nil {
		t.Fatal("bad policy accepted by SetPolicy")
	}
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Exercise(app, "nope"); err == nil {
		t.Fatal("unknown functionality accepted")
	}
}

func TestParseFormatPolicyRoundTrip(t *testing.T) {
	doc := `{[deny][library]["com/flurry"]}
{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}`
	rules, err := ParsePolicy(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Action != Deny || rules[1].Level != LevelHash {
		t.Fatalf("rules = %+v", rules)
	}
	again, err := ParsePolicy(FormatPolicy(rules))
	if err != nil || len(again) != 2 {
		t.Fatalf("round trip: %v %v", again, err)
	}
}

func TestGenerateCorpusFacade(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Apps = 10
	corpus, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 10 {
		t.Fatalf("corpus = %d", len(corpus))
	}
	dep, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := dep.InstallGenerated(corpus[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err := dep.Exercise(app, "core-sync")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !out[0].Delivered {
		t.Fatalf("corpus app core-sync failed: %+v", out)
	}
}

func TestUntaggedDefaultDrop(t *testing.T) {
	// An app using native sockets bypasses tagging; the gateway drops it.
	dep, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	funcs := demoFuncs()
	funcs[0].Op.UseNativeSocket = true
	app, err := dep.InstallApp(demoAPK(), funcs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dep.Exercise(app, "download")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Delivered {
		t.Fatal("untagged native-socket packet escaped")
	}
	if !strings.Contains(out[0].Reason, "untagged") {
		t.Fatalf("reason = %q", out[0].Reason)
	}
}
