package borderpatrol

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured numbers). Latency benchmarks report the
// virtual per-request latency as the custom metric "virt-ms/req" alongside
// the usual wall-clock ns/op.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/dex"
	"borderpatrol/internal/enforcer"
	"borderpatrol/internal/experiments"
	"borderpatrol/internal/flowtable"
	"borderpatrol/internal/ipv4"
	"borderpatrol/internal/netsim"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/sanitizer"
	"borderpatrol/internal/tag"
)

// benchCorpus caches a mid-size corpus across benchmarks.
var benchCorpus []*apkgen.App

func corpusForBench(b *testing.B, n int) []*apkgen.App {
	b.Helper()
	if len(benchCorpus) < n {
		cfg := apkgen.DefaultConfig()
		cfg.Apps = n
		var err error
		benchCorpus, err = apkgen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return benchCorpus[:n]
}

// BenchmarkFig3IoIHistogram regenerates Figure 3: monkey-exercise the
// corpus with the Context Manager tagging, then compute the IoI histogram.
// Each iteration analyzes a 200-app slice with 1,000 events per app.
func BenchmarkFig3IoIHistogram(b *testing.B) {
	corpus := corpusForBench(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(experiments.Fig3Config{
			Corpus:       corpus,
			MonkeyEvents: 1000,
			MonkeySeed:   int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Analysis.AppsWithIoI == 0 {
			b.Fatal("no IoIs")
		}
	}
}

// BenchmarkValidationTrackerBlocking regenerates the §VI-B1 validation:
// 1,050 deny rules over a library-covering app sample, dual run.
func BenchmarkValidationTrackerBlocking(b *testing.B) {
	corpus := corpusForBench(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunValidation(experiments.ValidationConfig{
			Corpus:       corpus,
			SampleSize:   20,
			TopLibraries: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.TrackerPacketsDropped != res.TrackerPacketsTotal {
			b.Fatal("validation precision lost")
		}
	}
}

// BenchmarkCaseStudyCloudStorage regenerates the §VI-C Dropbox/Box table.
func BenchmarkCaseStudyCloudStorage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCloudCaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Precise() {
			b.Fatal("case study imprecise")
		}
	}
}

// BenchmarkCaseStudyFacebookSDK regenerates the §VI-C SolCalendar table.
func BenchmarkCaseStudyFacebookSDK(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFacebookCaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Precise() {
			b.Fatal("case study imprecise")
		}
	}
}

// benchmarkFig4Config measures one Figure 4 configuration; b.N requests.
func benchmarkFig4Config(b *testing.B, id experiments.Fig4ConfigID) {
	b.Helper()
	b.ReportAllocs()
	iters := b.N
	point, err := experiments.RunFig4Config(id, experiments.Fig4Options{Iterations: iters, Runs: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(point.MeanLatency)/float64(time.Millisecond), "virt-ms/req")
}

// BenchmarkFig4LatencyConfigI..VI regenerate the six Figure 4 bars.
func BenchmarkFig4LatencyConfigI(b *testing.B) {
	benchmarkFig4Config(b, experiments.ConfigDefaultSLIRP)
}
func BenchmarkFig4LatencyConfigII(b *testing.B) {
	benchmarkFig4Config(b, experiments.ConfigDefaultTAP)
}
func BenchmarkFig4LatencyConfigIII(b *testing.B) {
	benchmarkFig4Config(b, experiments.ConfigTAPNFQueue)
}
func BenchmarkFig4LatencyConfigIV(b *testing.B) {
	benchmarkFig4Config(b, experiments.ConfigStaticInject)
}
func BenchmarkFig4LatencyConfigV(b *testing.B) {
	benchmarkFig4Config(b, experiments.ConfigStaticGetStack)
}
func BenchmarkFig4LatencyConfigVI(b *testing.B) {
	benchmarkFig4Config(b, experiments.ConfigDynamic)
}

// BenchmarkKeepAliveAmortization regenerates the §VI-D amortization sweep.
func BenchmarkKeepAliveAmortization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunKeepAliveAmortization([]int{1, 10, 100}, 20)
		if err != nil {
			b.Fatal(err)
		}
		if points[2].MeanPerRequest >= points[0].MeanPerRequest {
			b.Fatal("no amortization")
		}
	}
}

// BenchmarkFlowSizeBaseline regenerates the §VII flow-size and
// threshold-evasion analysis.
func BenchmarkFlowSizeBaseline(b *testing.B) {
	corpus := corpusForBench(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFlowSize(corpus, 4096)
		if err != nil {
			b.Fatal(err)
		}
		if res.FragmentedBlocked {
			b.Fatal("evasion unexpectedly detected by threshold")
		}
	}
}

// BenchmarkTagReplayMitigation regenerates the §VII set-once comparison.
func BenchmarkTagReplayMitigation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunReplay()
		if err != nil {
			b.Fatal(err)
		}
		if res.HardenedMaliciousDelivered {
			b.Fatal("replay mitigation failed")
		}
	}
}

// BenchmarkTagEncodeDecode measures the hot per-socket encode and the
// per-packet decode in isolation (the operations the paper amortizes).
func BenchmarkTagEncodeDecode(b *testing.B) {
	t := tag.Tag{Indexes: []uint32{12, 3400, 77, 19000, 2, 811, 4093}}
	for i := range t.AppHash {
		t.AppHash[i] = byte(i * 31)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := t.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tag.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnforcerThroughput measures sustained packets/second through the
// full deployment pipeline ("seeking to thousands of connections" §VI-D).
func BenchmarkEnforcerThroughput(b *testing.B) {
	dep, err := NewDeployment(DeploymentConfig{Policy: `{[deny][library]["com/flurry"]}`})
	if err != nil {
		b.Fatal(err)
	}
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := dep.Exercise(app, "download")
		if err != nil {
			b.Fatal(err)
		}
		if !out[0].Delivered {
			b.Fatal("dropped")
		}
	}
}

// BenchmarkEnforcerThroughputParallel isolates the gateway's per-packet
// pipeline — extraction, single-resolve stack decoding, compiled policy
// evaluation — and drives it from every core at once against the §VI-B1
// validation-scale rule set, without a flow cache (the uncached
// reference for the flow-table benchmarks below). Before this pipeline
// was compiled, the engine's stats mutex serialized all cores; now
// throughput must scale with GOMAXPROCS.
func BenchmarkEnforcerThroughputParallel(b *testing.B) {
	enf, pkt := benchPipeline(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if res := enf.Process(pkt); res.Verdict != policy.VerdictAllow {
				// b.Fatal must not run off the benchmark goroutine.
				b.Error("benign packet dropped")
				return
			}
		}
	})
}

// benchPipeline builds the validation-scale enforcer + a tagged packet
// for the gateway hot-path benchmarks: one fixture for both the uncached
// reference and the flow-cached fast path, so the comparison always
// measures the same workload.
func benchPipeline(b *testing.B, cached bool) (*enforcer.Enforcer, *ipv4.Packet) {
	b.Helper()
	apk := &dex.APK{
		PackageName: "com.corp.files",
		VersionCode: 1,
		Dexes: []*dex.File{{
			Classes: []dex.ClassDef{{
				Package: "com/corp/files",
				Name:    "SyncEngine",
				Methods: []dex.MethodDef{
					{Name: "download", Proto: "()V", File: "S.java", StartLine: 10, EndLine: 20},
					{Name: "upload", Proto: "()V", File: "S.java", StartLine: 30, EndLine: 40},
				},
			}},
		}},
	}
	db := analyzer.NewDatabase()
	if err := db.Add(apk); err != nil {
		b.Fatal(err)
	}
	rules := make([]policy.Rule, 0, 1050)
	for i := 0; i < 1050; i++ {
		rules = append(rules, policy.Rule{
			Action: policy.Deny,
			Level:  policy.LevelLibrary,
			Target: fmt.Sprintf("com/blocked/lib%04d", i),
		})
	}
	eng, err := policy.NewEngine(rules, policy.VerdictAllow)
	if err != nil {
		b.Fatal(err)
	}
	cfg := enforcer.Config{}
	if cached {
		cfg.Flows = enforcer.NewFlowCache(flowtable.Config{})
	}
	enf := enforcer.New(cfg, db, eng)

	tg := tag.Tag{AppHash: apk.Truncated(), Indexes: []uint32{0, 1}}
	payload, err := tg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	pkt := &ipv4.Packet{
		Header: ipv4.Header{
			TTL:      64,
			Protocol: ipv4.ProtoTCP,
			Src:      netip.MustParseAddr("10.66.0.2"),
			Dst:      netip.MustParseAddr("93.184.216.34"),
		},
		Payload: []byte("POST /x HTTP/1.1\r\n\r\n"),
	}
	pkt.Header.SetOption(ipv4.Option{Type: ipv4.OptSecurity, Data: payload})
	return enf, pkt
}

// BenchmarkEnforcerFlowCacheHitParallel is the flow-table acceptance
// benchmark at deployment scale: the §VI-B1 rule set behind a warmed flow
// cache, driven from every core. Each packet is one shard probe — no tag
// decode, no stack decode, no Evaluate.
func BenchmarkEnforcerFlowCacheHitParallel(b *testing.B) {
	enf, pkt := benchPipeline(b, true)
	enf.Process(pkt) // warm the flow
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if res := enf.Process(pkt); res.Verdict != policy.VerdictAllow {
				b.Error("benign packet dropped")
				return
			}
		}
	})
}

// BenchmarkGatewayBatchDrain pushes 256-packet keep-alive bursts through
// the full gateway (netfilter batch traversal, per-core drain, enforcer
// batch memo, sanitizer). Reported ns/op is per packet.
func BenchmarkGatewayBatchDrain(b *testing.B) {
	enf, pkt := benchPipeline(b, true)
	gw := netsim.NewGateway(netsim.GatewayConfig{
		Enforcer:  enf,
		Sanitizer: sanitizer.New(sanitizer.Config{}),
	})
	burst := make([]*ipv4.Packet, 256)
	for i := range burst {
		burst[i] = pkt
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(burst) {
		out, err := gw.ProcessBatch(burst)
		if err != nil {
			b.Fatal(err)
		}
		if out[0].Out == nil {
			b.Fatal("benign packet dropped")
		}
	}
}

// BenchmarkOfflineAnalyzer measures database construction per app —
// relevant to provisioning-time cost when administrators onboard apps.
func BenchmarkOfflineAnalyzer(b *testing.B) {
	corpus := corpusForBench(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ga := corpus[i%len(corpus)]
		entry, err := analyzeOne(ga)
		if err != nil {
			b.Fatal(err)
		}
		if len(entry) == 0 {
			b.Fatal("empty table")
		}
	}
}

func analyzeOne(ga *apkgen.App) ([]string, error) {
	sigs := ga.APK.Signatures()
	out := make([]string, len(sigs))
	for i, s := range sigs {
		out[i] = s.String()
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no signatures")
	}
	return out, nil
}
