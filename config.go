package borderpatrol

import (
	"io"
	"net/netip"
	"time"
)

// PolicyConfig is everything that decides a packet's fate: the rule
// document (or its live backend), the hot-reload cadence, the staleness
// posture, and the defaults applied when no rule is decisive.
type PolicyConfig struct {
	// Doc is a policy document in the paper's grammar; empty means no
	// rules (the default verdict decides everything). Mutually exclusive
	// with Source.
	Doc string
	// Source feeds the policy engine from an external backend (see
	// FilePolicySource, HTTPPolicySource, StaticPolicySource). The initial
	// document loads synchronously — a broken initial policy fails
	// construction — and later revisions hot-swap atomically, keeping the
	// last-good rules on any fetch or parse error.
	Source PolicySource
	// Poll is the hot-reload poll interval when Source is set; 0 disables
	// background polling (ReloadPolicy still works). Successive polls are
	// jittered ±20% so fleets don't thundering-herd the backend. For
	// watch-capable sources Poll is the fallback interval used while the
	// watch path is down.
	Poll time.Duration
	// WatchTimeout bounds how long a watch-capable Source parks one
	// long-poll round (0 selects the store default of 30s). A timeout
	// counts as a healthy unchanged cycle, not staleness.
	WatchTimeout time.Duration
	// MaxStale is the staleness deadline: when the store has not seen a
	// healthy reload cycle for longer than this (in the network's virtual
	// time), it degrades the engine according to FailMode. Zero disables
	// the deadline.
	MaxStale time.Duration
	// FailMode selects the degraded posture past MaxStale: FailStatic
	// keeps the last-good rules serving (the default), FailOpen admits
	// everything, FailClosed denies everything. Recovery is automatic on
	// the next healthy reload.
	FailMode FailMode
	// DefaultVerdict applies when no rule is decisive; zero value means
	// VerdictAllow.
	DefaultVerdict Verdict
	// AllowUntagged admits packets without a BorderPatrol tag (default
	// false: the paper drops them inside the perimeter).
	AllowUntagged bool
	// InitialContext provisions the device's context (network trust class,
	// posture) into the deployment's device-context source at construction,
	// so contextual risk rules in Doc score the very first flow against
	// known context instead of the unknown-device default. nil leaves the
	// device unprovisioned (the least-trusted posture) until it reports or
	// the source is updated via Deployment.Context().
	InitialContext *DeviceContext
}

// FlowConfig shapes the gateway dataplane: the per-flow verdict cache and
// the batch drain.
type FlowConfig struct {
	// CacheSize bounds the gateway's per-flow verdict cache: 0 selects
	// the default (65,536 flows), a negative value disables caching so
	// every packet pays the full decode+evaluate pipeline.
	CacheSize int
	// TTL expires cached flow verdicts after this much virtual time
	// (0 selects the default of one minute).
	TTL time.Duration
	// Workers sizes the gateway's per-core batch drain (0 selects
	// GOMAXPROCS).
	Workers int
	// Dataplane compiles the hot rule subset and established-flow verdicts
	// into a per-core match-action stage probed at the netfilter layer
	// before the enforcer queue — the software analogue of a P4 switch
	// table. Requires the flow pipeline (any CacheSize ≥ 0); entries
	// self-invalidate on policy/database/context changes through the same
	// generation contract the verdict cache uses.
	Dataplane bool
	// DataplaneEntries sizes each per-core table (rounded up to a power
	// of two; 0 selects 2048 entries of ~88 bytes).
	DataplaneEntries int
}

// AuditConfig shapes the asynchronous enforcement audit pipeline.
type AuditConfig struct {
	// Writer receives one JSON line per enforcement decision (nil
	// disables file output; the in-memory audit tail is always kept).
	// Entries are recorded asynchronously: the enforcement path appends a
	// compact capture and a background drainer batch-encodes the JSON, so
	// lines reach the writer after the next flush (AuditTail and Close
	// both flush).
	Writer io.Writer
	// QueueCap bounds the pending (recorded but not yet encoded) audit
	// entries; beyond it entries are counted as dropped rather than
	// stalling enforcement (0 selects the audit package default).
	QueueCap int
}

// NetConfig shapes the simulated network and the provisioned device.
type NetConfig struct {
	// Faults arms the network with a deterministic wire-fault plan at
	// construction; nil leaves the wire perfect. SetFaults installs or
	// replaces a plan later.
	Faults *FaultPlan
	// DeviceAddr overrides the device network address.
	DeviceAddr netip.Addr
	// HardenedKernel enables the set-once IP_OPTIONS protection against
	// tag replay (§VII). Defaults to true.
	HardenedKernel *bool
}

// Config assembles a BorderPatrol deployment from its four concerns. The
// same sub-configs parameterize each gateway of a Fleet, so single-gateway
// and fleet deployments read the same way — one gateway is just the N=1
// special case.
type Config struct {
	Policy PolicyConfig
	Flow   FlowConfig
	Audit  AuditConfig
	Net    NetConfig
}

// DeploymentConfig is the original flat configuration.
//
// Deprecated: use Config, which groups the same knobs into
// PolicyConfig/FlowConfig/AuditConfig/NetConfig (reused per-gateway by
// FleetConfig). DeploymentConfig remains a converting shim — NewDeployment
// forwards to New — and every field keeps its exact old meaning.
type DeploymentConfig struct {
	// Policy is a policy document in the paper's grammar; empty means no
	// rules. Mutually exclusive with PolicySource.
	Policy string
	// PolicySource feeds the policy engine from an external backend.
	PolicySource PolicySource
	// PolicyPoll is the hot-reload poll interval when PolicySource is set.
	PolicyPoll time.Duration
	// PolicyMaxStale is the staleness deadline (0 disables it).
	PolicyMaxStale time.Duration
	// PolicyFailMode selects the degraded posture past PolicyMaxStale.
	PolicyFailMode FailMode
	// Faults arms the network with a wire-fault plan at construction.
	Faults *FaultPlan
	// DefaultVerdict applies when no rule is decisive.
	DefaultVerdict Verdict
	// AllowUntagged admits packets without a BorderPatrol tag.
	AllowUntagged bool
	// HardenedKernel enables the set-once IP_OPTIONS protection.
	HardenedKernel *bool
	// FlowCacheSize bounds the per-flow verdict cache.
	FlowCacheSize int
	// FlowTTL expires cached flow verdicts.
	FlowTTL time.Duration
	// GatewayWorkers sizes the gateway's batch drain.
	GatewayWorkers int
	// DeviceAddr overrides the device network address.
	DeviceAddr netip.Addr
	// AuditWriter receives one JSON line per enforcement decision.
	AuditWriter io.Writer
	// AuditQueueCap bounds the pending audit entries.
	AuditQueueCap int
}

// Config converts the flat legacy form into the grouped Config. The
// mapping is total: every DeploymentConfig field lands in exactly one
// sub-config, so NewDeployment(old) ≡ New(old.Config()).
func (c DeploymentConfig) Config() Config {
	return Config{
		Policy: PolicyConfig{
			Doc:            c.Policy,
			Source:         c.PolicySource,
			Poll:           c.PolicyPoll,
			MaxStale:       c.PolicyMaxStale,
			FailMode:       c.PolicyFailMode,
			DefaultVerdict: c.DefaultVerdict,
			AllowUntagged:  c.AllowUntagged,
		},
		Flow: FlowConfig{
			CacheSize: c.FlowCacheSize,
			TTL:       c.FlowTTL,
			Workers:   c.GatewayWorkers,
		},
		Audit: AuditConfig{
			Writer:   c.AuditWriter,
			QueueCap: c.AuditQueueCap,
		},
		Net: NetConfig{
			Faults:         c.Faults,
			DeviceAddr:     c.DeviceAddr,
			HardenedKernel: c.HardenedKernel,
		},
	}
}

// NewDeployment provisions a deployment from the legacy flat config.
//
// Deprecated: use New with the grouped Config.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	return New(cfg.Config())
}
