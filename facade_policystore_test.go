package borderpatrol

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestDeploymentFilePolicyHotReload drives the multi-backend policy store
// through the facade: a deployment built over a FilePolicySource hot-swaps
// an edited policy file without restart, keeps the last-good rules when the
// edit is malformed, and surfaces the reload counters in DeploymentStats.
func TestDeploymentFilePolicyHotReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bp")
	writePolicy(t, path, `{[deny][library]["com/flurry"]}`)

	dep, err := NewDeployment(DeploymentConfig{
		PolicySource: FilePolicySource(path),
		// No background poll: the test drives ReloadPolicy explicitly for
		// determinism (bp-gateway uses PolicyPoll).
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	// Initial policy: analytics (tracker) dropped, upload flows.
	assertOutcome(t, dep, app, "analytics", false)
	assertOutcome(t, dep, app, "upload", true)

	// Hot reload: additionally deny the upload method.
	writePolicy(t, path, `
{[deny][library]["com/flurry"]}
{[deny][method]["Lcom/corp/files/SyncEngine;->upload()V"]}
`)
	applied, err := dep.ReloadPolicy()
	if err != nil || !applied {
		t.Fatalf("ReloadPolicy: applied=%v err=%v", applied, err)
	}
	assertOutcome(t, dep, app, "upload", false)
	assertOutcome(t, dep, app, "download", true)

	// Malformed edit: rejected, last-good (2-rule) policy keeps serving.
	writePolicy(t, path, `{[deny][library "broken"]}`)
	if _, err := dep.ReloadPolicy(); err == nil {
		t.Fatal("malformed candidate applied")
	}
	assertOutcome(t, dep, app, "upload", false)
	assertOutcome(t, dep, app, "analytics", false)
	assertOutcome(t, dep, app, "download", true)

	st := dep.Stats()
	if st.PolicyReloads != 2 || st.PolicyReloadFailures != 1 {
		t.Fatalf("reload stats = %+v", st)
	}
	if st.PolicyVersion == "" || !strings.Contains(st.PolicyLastError, "line 1") {
		t.Fatalf("version/error stats = %q / %q", st.PolicyVersion, st.PolicyLastError)
	}
	if ps := dep.PolicyStoreStats(); ps.Applied != 2 || ps.Rules != 2 {
		t.Fatalf("store stats = %+v", ps)
	}
}

// TestDeploymentPolicyPollBackground: with PolicyPoll set, an edit applies
// with no explicit call at all.
func TestDeploymentPolicyPollBackground(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bp")
	writePolicy(t, path, `{[deny][library]["com/flurry"]}`)

	dep, err := NewDeployment(DeploymentConfig{
		PolicySource: FilePolicySource(path),
		PolicyPoll:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}
	assertOutcome(t, dep, app, "upload", true)

	time.Sleep(3 * time.Millisecond) // ensure a distinct mtime
	writePolicy(t, path, `{[deny][method]["Lcom/corp/files/SyncEngine;->upload()V"]}`)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && dep.Stats().PolicyReloads < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	if st := dep.Stats(); st.PolicyReloads < 2 {
		t.Fatalf("background poll never applied the edit: %+v", st)
	}
	assertOutcome(t, dep, app, "upload", false)
	assertOutcome(t, dep, app, "analytics", true) // tracker rule replaced
}

func TestDeploymentStaticPolicySource(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{
		PolicySource: StaticPolicySource(`{[deny][library]["com/flurry"]}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	app, err := dep.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}
	assertOutcome(t, dep, app, "analytics", false)
	if st := dep.Stats(); st.PolicyReloads != 1 || st.PolicyVersion == "" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeploymentPolicySourceExclusions(t *testing.T) {
	_, err := NewDeployment(DeploymentConfig{
		Policy:       `{[deny][library]["com/flurry"]}`,
		PolicySource: StaticPolicySource(""),
	})
	if err == nil {
		t.Fatal("Policy + PolicySource accepted")
	}

	// A broken initial policy is fatal: no last-good exists yet.
	if _, err := NewDeployment(DeploymentConfig{
		PolicySource: StaticPolicySource(`{[broken`),
	}); err == nil {
		t.Fatal("broken initial policy accepted")
	}

	// Without a source, ReloadPolicy reports misuse.
	dep, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.ReloadPolicy(); err == nil {
		t.Fatal("ReloadPolicy without a source succeeded")
	}
	if st := dep.Stats(); st.PolicyReloads != 0 || st.PolicyVersion != "" {
		t.Fatalf("sourceless stats = %+v", st)
	}
}

// assertOutcome exercises one functionality and asserts delivery.
func assertOutcome(t *testing.T, dep *Deployment, app *App, fn string, wantDelivered bool) {
	t.Helper()
	out, err := dep.Exercise(app, fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("%s emitted no packets", fn)
	}
	for i, o := range out {
		if o.Delivered != wantDelivered {
			t.Fatalf("%s packet %d delivered=%v want %v (reason %q, stage %q)",
				fn, i, o.Delivered, wantDelivered, o.Reason, o.DropStage)
		}
	}
}

func writePolicy(t *testing.T, path, doc string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}
