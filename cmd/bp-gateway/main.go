// Command bp-gateway runs a BorderPatrol gateway session against a
// simulated BYOD device (paper §V-C/§V-D): it provisions a device with the
// Context Manager, installs a corpus slice, enforces a policy file at the
// gateway, exercises the apps with the monkey, and prints the enforcement
// audit.
//
// Usage:
//
//	bp-gateway -policy policy.bp -apps 20 -events 1000
//	bp-gateway -apps 5            # empty policy: only untagged traffic drops
//	bp-gateway -workers 8         # size the batched per-core queue drain
//	bp-gateway -no-flow-cache     # force the uncached per-packet pipeline
//	bp-gateway -audit trail.jsonl # ship the enforcement audit as JSON lines
//
// Hot reload (multi-backend policy store): -policy-file polls a policy
// file for edits, -policy-url polls an HTTP endpoint with ETag conditional
// fetches; either hot-swaps the compiled rules atomically mid-session and
// keeps the last-good rules if a candidate fails to parse.
//
//	bp-gateway -policy-file policy.bp                  # edit the file while it runs
//	bp-gateway -policy-url http://ctrl/policy.bp -policy-poll 5s
//
// Graceful degradation: -policy-max-stale arms a staleness deadline on the
// hot-reload store and -fail-mode selects the posture past it — "static"
// keeps the last-good rules (default), "open" admits everything, "closed"
// denies everything until a healthy reload recovers.
//
//	bp-gateway -policy-url http://ctrl/policy.bp -policy-max-stale 30s -fail-mode closed
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/audit"
	"borderpatrol/internal/experiments"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/monkey"
	"borderpatrol/internal/policy"
	"borderpatrol/internal/policystore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bp-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	policyPath := flag.String("policy", "", "policy file in the paper's grammar, loaded once (empty = allow all)")
	policyFile := flag.String("policy-file", "", "policy file with hot reload: edits apply without restart")
	policyURL := flag.String("policy-url", "", "policy HTTP endpoint with hot reload (ETag conditional fetches)")
	policyPoll := flag.Duration("policy-poll", 2*time.Second, "hot-reload poll interval for -policy-file/-policy-url")
	policyMaxStale := flag.Duration("policy-max-stale", 0, "staleness deadline before the store degrades per -fail-mode (0 = never)")
	failModeName := flag.String("fail-mode", "static", "degraded posture past -policy-max-stale: static|open|closed")
	apps := flag.Int("apps", 20, "number of corpus apps to install")
	events := flag.Int("events", 1000, "monkey events per app")
	seed := flag.Int64("seed", 2019, "corpus + monkey seed")
	workers := flag.Int("workers", 0, "gateway batch-drain workers (0 = GOMAXPROCS)")
	noFlowCache := flag.Bool("no-flow-cache", false, "disable per-flow verdict caching")
	auditPath := flag.String("audit", "", "write the enforcement audit trail (JSON lines) to this file")
	auditRotateBytes := flag.Int64("audit-rotate-bytes", 0, "rotate the -audit file when it reaches this size (0 = never)")
	auditRotateKeep := flag.Int("audit-rotate-keep", 4, "rotated -audit files to keep beside the active one")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (e.g. 127.0.0.1:9090) at /metrics")
	linger := flag.Duration("linger", 0, "keep the process (and -metrics-addr endpoint) alive this long after the session")
	flag.Parse()

	set := 0
	for _, s := range []string{*policyPath, *policyFile, *policyURL} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return errors.New("-policy, -policy-file and -policy-url are mutually exclusive")
	}
	var policySource policystore.Source
	switch {
	case *policyFile != "":
		policySource = policystore.NewFileSource(*policyFile)
	case *policyURL != "":
		policySource = policystore.NewHTTPSource(*policyURL, nil)
	}
	failMode, err := policystore.ParseFailMode(*failModeName)
	if err != nil {
		return err
	}
	if *policyMaxStale > 0 && policySource == nil {
		return errors.New("-policy-max-stale requires -policy-file or -policy-url")
	}

	var auditW io.Writer
	if *auditPath != "" {
		if *auditRotateBytes > 0 {
			rw, err := audit.NewRotatingWriter(*auditPath, *auditRotateBytes, *auditRotateKeep)
			if err != nil {
				return err
			}
			defer rw.Close()
			auditW = rw
		} else {
			f, err := os.Create(*auditPath)
			if err != nil {
				return err
			}
			defer f.Close()
			auditW = f
		}
	}

	var rules []policy.Rule
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			return err
		}
		rules, err = policy.ParsePolicy(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d policy rules from %s\n", len(rules), *policyPath)
	}

	cfg := apkgen.DefaultConfig()
	cfg.Apps = *apps
	cfg.Seed = *seed
	corpus, err := apkgen.Generate(cfg)
	if err != nil {
		return err
	}
	tb, err := experiments.NewTestbed(corpus, experiments.TestbedConfig{
		EnforcementOn:    true,
		Rules:            rules,
		DefaultVerdict:   policy.VerdictAllow,
		DisableFlowCache: *noFlowCache,
		GatewayWorkers:   *workers,
		AuditWriter:      auditW,
		PolicySource:     policySource,
		PolicyPoll:       *policyPoll,
		PolicyMaxStale:   *policyMaxStale,
		PolicyFailMode:   failMode,
	})
	if err != nil {
		return err
	}
	if tb.Policy != nil {
		ps := tb.Policy.Stats()
		fmt.Printf("policy store: %d rules from %s (revision %s, hot reload every %s)\n",
			ps.Rules, ps.Source, ps.Version, *policyPoll)
		if *policyMaxStale > 0 {
			fmt.Printf("  staleness deadline %s, fail mode %s\n", *policyMaxStale, failMode)
		}
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", tb.Metrics.Handler())
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}

	totalPackets, delivered := 0, 0
	for i, app := range tb.Apps {
		rep, err := monkey.Run(app, monkey.Config{
			Events:             *events,
			NetworkTriggerProb: 0.02,
			Seed:               *seed + int64(i),
		})
		if err != nil {
			return err
		}
		// Drain the app's whole monkey session as one burst through the
		// batched per-core gateway pipeline.
		totalPackets += len(rep.Packets)
		d, _ := tb.DeliverAll(rep.Packets)
		delivered += d
	}

	fmt.Printf("\ngateway session: %d apps, %d monkey events each\n", len(tb.Apps), *events)
	fmt.Printf("packets seen: %d, delivered: %d, dropped: %d\n", totalPackets, delivered, totalPackets-delivered)
	if ps := tb.Policy.Stats(); ps.LastError != "" {
		fmt.Printf("last rejected policy candidate: %s\n", ps.LastError)
	}
	// Flush-on-close so every decision reaches the -audit file before the
	// stats are printed.
	if err := tb.Close(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	// The stats printout walks the metrics registry: every instrument a
	// component registered shows up here automatically — no hand-listed
	// fields to fall out of date when a layer grows a counter.
	printRegistry(tb.Metrics)
	cm := tb.Manager.Stats()
	fmt.Printf("context manager: sockets tagged=%d, frames resolved=%d, framework frames filtered=%d\n",
		cm.SocketsTagged, cm.FramesResolved, cm.FramesDropped)

	if *linger > 0 {
		fmt.Printf("lingering %s for scrapers...\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// printRegistry renders every registered series, one line per sample.
// Histograms print count, mean and the tail quantiles instead of raw
// buckets — the interactive rendering of what /metrics exposes in full.
func printRegistry(r *metrics.Registry) {
	for _, s := range r.Snapshot() {
		var lb strings.Builder
		for i, l := range s.Labels {
			if i == 0 {
				lb.WriteByte('{')
			} else {
				lb.WriteByte(',')
			}
			fmt.Fprintf(&lb, "%s=%q", l.Key, l.Value)
		}
		if len(s.Labels) > 0 {
			lb.WriteByte('}')
		}
		switch {
		case s.Hist != nil:
			fmt.Printf("%s%s count=%d mean=%.0f p50=%d p99=%d p999=%d\n",
				s.Name, lb.String(), s.Hist.Count(), s.Hist.Mean(),
				s.Hist.Quantile(0.5), s.Hist.Quantile(0.99), s.Hist.Quantile(0.999))
		case s.Kind == metrics.KindGauge:
			fmt.Printf("%s%s %g\n", s.Name, lb.String(), s.Value)
		default:
			fmt.Printf("%s%s %.0f\n", s.Name, lb.String(), s.Value)
		}
	}
}
