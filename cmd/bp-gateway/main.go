// Command bp-gateway runs a BorderPatrol gateway session against a
// simulated BYOD device (paper §V-C/§V-D): it provisions a device with the
// Context Manager, installs a corpus slice, enforces a policy file at the
// gateway, exercises the apps with the monkey, and prints the enforcement
// audit.
//
// Usage:
//
//	bp-gateway -policy policy.bp -apps 20 -events 1000
//	bp-gateway -apps 5            # empty policy: only untagged traffic drops
//	bp-gateway -workers 8         # size the batched per-core queue drain
//	bp-gateway -no-flow-cache     # force the uncached per-packet pipeline
//	bp-gateway -audit trail.jsonl # ship the enforcement audit as JSON lines
//
// Hot reload (multi-backend policy store): -policy-file polls a policy
// file for edits, -policy-url polls an HTTP endpoint with ETag conditional
// fetches; either hot-swaps the compiled rules atomically mid-session and
// keeps the last-good rules if a candidate fails to parse.
//
//	bp-gateway -policy-file policy.bp                  # edit the file while it runs
//	bp-gateway -policy-url http://ctrl/policy.bp -policy-poll 5s
//
// Graceful degradation: -policy-max-stale arms a staleness deadline on the
// hot-reload store and -fail-mode selects the posture past it — "static"
// keeps the last-good rules (default), "open" admits everything, "closed"
// denies everything until a healthy reload recovers.
//
//	bp-gateway -policy-url http://ctrl/policy.bp -policy-max-stale 30s -fail-mode closed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/cliflags"
	"borderpatrol/internal/experiments"
	"borderpatrol/internal/metrics"
	"borderpatrol/internal/monkey"
	"borderpatrol/internal/policy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bp-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	policyPath := flag.String("policy", "", "policy file in the paper's grammar, loaded once (empty = allow all)")
	apps := flag.Int("apps", 20, "number of corpus apps to install")
	events := flag.Int("events", 1000, "monkey events per app")
	seed := flag.Int64("seed", 2019, "corpus + monkey seed")
	workers := flag.Int("workers", 0, "gateway batch-drain workers (0 = GOMAXPROCS)")
	noFlowCache := flag.Bool("no-flow-cache", false, "disable per-flow verdict caching")
	policyFlags := cliflags.RegisterPolicy(flag.CommandLine)
	auditFlags := cliflags.RegisterAudit(flag.CommandLine)
	metricsFlags := cliflags.RegisterMetrics(flag.CommandLine)
	contextFlags := cliflags.RegisterContext(flag.CommandLine)
	flag.Parse()

	policySource, failMode, err := policyFlags.Source(*policyPath != "")
	if err != nil {
		return err
	}
	deviceCtx, err := contextFlags.DeviceContext()
	if err != nil {
		return err
	}
	auditW, closeAudit, err := auditFlags.Writer()
	if err != nil {
		return err
	}
	defer closeAudit()

	var rules []policy.Rule
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			return err
		}
		rules, err = policy.ParsePolicy(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d policy rules from %s\n", len(rules), *policyPath)
	}

	cfg := apkgen.DefaultConfig()
	cfg.Apps = *apps
	cfg.Seed = *seed
	corpus, err := apkgen.Generate(cfg)
	if err != nil {
		return err
	}
	tb, err := experiments.NewTestbed(corpus, experiments.TestbedConfig{
		EnforcementOn:    true,
		Rules:            rules,
		DefaultVerdict:   policy.VerdictAllow,
		DisableFlowCache: *noFlowCache,
		GatewayWorkers:   *workers,
		AuditWriter:      auditW,
		PolicySource:     policySource,
		PolicyPoll:       policyFlags.Poll,
		PolicyMaxStale:   policyFlags.MaxStale,
		PolicyFailMode:   failMode,
	})
	if err != nil {
		return err
	}
	if deviceCtx != nil {
		tb.Context.Provision(tb.Device.Config().Addr, *deviceCtx)
		fmt.Printf("device context: network %s, patch age %dd\n", deviceCtx.Network, deviceCtx.PatchAgeDays)
	}
	if tb.Policy != nil {
		ps := tb.Policy.Stats()
		fmt.Printf("policy store: %d rules from %s (revision %s, hot reload every %s)\n",
			ps.Rules, ps.Source, ps.Version, policyFlags.Poll)
		if policyFlags.MaxStale > 0 {
			fmt.Printf("  staleness deadline %s, fail mode %s\n", policyFlags.MaxStale, failMode)
		}
	}

	metricsAddr, stopMetrics, err := metricsFlags.Serve(tb.Metrics.Handler())
	if err != nil {
		return err
	}
	defer stopMetrics()
	if metricsAddr != "" {
		fmt.Printf("metrics: http://%s/metrics\n", metricsAddr)
	}

	totalPackets, delivered := 0, 0
	for i, app := range tb.Apps {
		rep, err := monkey.Run(app, monkey.Config{
			Events:             *events,
			NetworkTriggerProb: 0.02,
			Seed:               *seed + int64(i),
		})
		if err != nil {
			return err
		}
		// Drain the app's whole monkey session as one burst through the
		// batched per-core gateway pipeline.
		totalPackets += len(rep.Packets)
		d, _ := tb.DeliverAll(rep.Packets)
		delivered += d
	}

	fmt.Printf("\ngateway session: %d apps, %d monkey events each\n", len(tb.Apps), *events)
	fmt.Printf("packets seen: %d, delivered: %d, dropped: %d\n", totalPackets, delivered, totalPackets-delivered)
	if ps := tb.Policy.Stats(); ps.LastError != "" {
		fmt.Printf("last rejected policy candidate: %s\n", ps.LastError)
	}
	// Flush-on-close so every decision reaches the -audit file before the
	// stats are printed.
	if err := tb.Close(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	// The stats printout walks the metrics registry: every instrument a
	// component registered shows up here automatically — no hand-listed
	// fields to fall out of date when a layer grows a counter.
	printRegistry(tb.Metrics)
	cm := tb.Manager.Stats()
	fmt.Printf("context manager: sockets tagged=%d, frames resolved=%d, framework frames filtered=%d\n",
		cm.SocketsTagged, cm.FramesResolved, cm.FramesDropped)

	metricsFlags.Wait(os.Stdout)
	return nil
}

// printRegistry renders every registered series, one line per sample.
// Histograms print count, mean and the tail quantiles instead of raw
// buckets — the interactive rendering of what /metrics exposes in full.
func printRegistry(r *metrics.Registry) {
	for _, s := range r.Snapshot() {
		var lb strings.Builder
		for i, l := range s.Labels {
			if i == 0 {
				lb.WriteByte('{')
			} else {
				lb.WriteByte(',')
			}
			fmt.Fprintf(&lb, "%s=%q", l.Key, l.Value)
		}
		if len(s.Labels) > 0 {
			lb.WriteByte('}')
		}
		switch {
		case s.Hist != nil:
			fmt.Printf("%s%s count=%d mean=%.0f p50=%d p99=%d p999=%d\n",
				s.Name, lb.String(), s.Hist.Count(), s.Hist.Mean(),
				s.Hist.Quantile(0.5), s.Hist.Quantile(0.99), s.Hist.Quantile(0.999))
		case s.Kind == metrics.KindGauge:
			fmt.Printf("%s%s %g\n", s.Name, lb.String(), s.Value)
		default:
			fmt.Printf("%s%s %.0f\n", s.Name, lb.String(), s.Value)
		}
	}
}
