// Command bp-extractor is the Policy Extractor CLI (paper §V-E): it runs
// the two-run differential profiling workflow on the scripted cloud-storage
// and Facebook-SDK apps and prints the derived policies.
//
// In a real deployment, an administrator exercises the app manually in the
// two runs; here the harness drives the desirable functionality as run 1
// and the undesirable functionality as run 2.
//
// Usage:
//
//	bp-extractor -scenario cloud -level method
//	bp-extractor -scenario facebook -level class
package main

import (
	"flag"
	"fmt"
	"os"

	"borderpatrol/internal/experiments"
	"borderpatrol/internal/policy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bp-extractor:", err)
		os.Exit(1)
	}
}

func run() error {
	scenario := flag.String("scenario", "cloud", "profiling scenario: cloud | facebook")
	level := flag.String("level", "method", "extraction level: method | class | library")
	flag.Parse()

	lv, err := policy.ParseLevel(*level)
	if err != nil {
		return err
	}
	if lv == policy.LevelHash {
		return fmt.Errorf("hash-level extraction is not meaningful: use method/class/library")
	}

	var res *experiments.CaseStudyResult
	switch *scenario {
	case "cloud":
		res, err = experiments.RunCloudCaseStudy()
	case "facebook":
		res, err = experiments.RunFacebookCaseStudy()
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}

	fmt.Printf("two-run differential profiling: %s\n\n", res.Name)
	fmt.Println("run 1: exercised desirable functionality (baseline profile)")
	fmt.Println("run 2: exercised undesirable functionality")
	fmt.Println("\nextracted policy (method signatures unique to run 2):")
	fmt.Print(policy.FormatPolicy(res.ExtractedRules))
	fmt.Println("\nenforcement check with the extracted policy:")
	fmt.Print(res.Format())
	return nil
}
