// Command bp-benchgate is the benchmark-regression gate for CI: it parses
// two Go benchmark outputs (the committed baseline and a fresh run of the
// fast-path benchmarks), compares per-benchmark medians, and exits
// non-zero when the new run regresses — more than the ns/op threshold on
// time, or *any* increase in allocs/op (the fast paths are designed
// allocation-free; a single new allocation per op is a defect, not noise).
//
// Benchmarks are matched by name with the -cpu suffix stripped, so
// baselines recorded on different core counts still line up. Benchmarks
// present in the baseline but missing from the new run fail the gate
// (deleting a gated benchmark must be an explicit baseline update), while
// extra new benchmarks only warn until they are added to the baseline.
//
// allocs/op is machine-independent, so it always gates against the
// committed baseline. ns/op is NOT portable across heterogeneous CI
// runners — compare it only against a run from the same machine (CI
// re-benchmarks the merge-base on the same runner for that); use
// -allocs-only when the reference numbers came from different hardware.
//
// Usage:
//
//	go test -run NONE -bench 'Flow|Batch' -benchmem -count 6 ./... | tee new.txt
//	bp-benchgate -baseline bench/baseline.txt -current new.txt
//	bp-benchgate -threshold 0.10 ...   # tighten the ns/op gate to 10%
//	bp-benchgate -allocs-only ...      # cross-machine baseline: gate allocs only
//	bp-benchgate -json gate.json ...   # machine-readable comparison for dashboards
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// results maps a normalized benchmark name to its samples across -count
// repetitions.
type results map[string][]sample

// reportRow is one benchmark comparison in the -json report.
type reportRow struct {
	Name        string   `json:"name"`
	BaseNsPerOp float64  `json:"base_ns_per_op"`
	NewNsPerOp  float64  `json:"new_ns_per_op"`
	DeltaPct    float64  `json:"delta_pct"`
	BaseAllocs  *float64 `json:"base_allocs_per_op,omitempty"`
	NewAllocs   *float64 `json:"new_allocs_per_op,omitempty"`
	Missing     bool     `json:"missing,omitempty"`
	Pass        bool     `json:"pass"`
}

// report is the -json output: everything the human table shows, plus the
// verdict, so dashboards and CI annotations can consume the gate without
// scraping stdout.
type report struct {
	Threshold  float64     `json:"threshold"`
	AllocsOnly bool        `json:"allocs_only"`
	Benchmarks []reportRow `json:"benchmarks"`
	Extra      []string    `json:"extra_benchmarks,omitempty"`
	Failures   []string    `json:"failures,omitempty"`
	Passed     bool        `json:"passed"`
}

func main() {
	baselinePath := flag.String("baseline", "bench/baseline.txt", "committed baseline benchmark output")
	currentPath := flag.String("current", "", "fresh benchmark output to gate (required)")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated ns/op regression (fraction)")
	allocsOnly := flag.Bool("allocs-only", false, "gate only allocs/op (baseline from different hardware)")
	jsonPath := flag.String("json", "", "also write the per-benchmark comparison as JSON to this path")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "bp-benchgate: -current is required")
		os.Exit(2)
	}
	if err := run(*baselinePath, *currentPath, *threshold, *allocsOnly, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "bp-benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath string, threshold float64, allocsOnly bool, jsonPath string) error {
	base, err := parseFile(baselinePath)
	if err != nil {
		return err
	}
	cur, err := parseFile(currentPath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline %s contains no benchmark lines", baselinePath)
	}
	if len(cur) == 0 {
		return fmt.Errorf("current run %s contains no benchmark lines", currentPath)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	rep := report{Threshold: threshold, AllocsOnly: allocsOnly}
	var failures []string
	fmt.Printf("%-44s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "new ns/op", "Δ", "allocs/op")
	for _, name := range names {
		bs, cs := base[name], cur[name]
		if len(cs) == 0 {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the new run", name))
			rep.Benchmarks = append(rep.Benchmarks, reportRow{Name: name, BaseNsPerOp: medianNs(bs), Missing: true})
			continue
		}
		bNs, cNs := medianNs(bs), medianNs(cs)
		delta := (cNs - bNs) / bNs
		bAllocs, bHas := medianAllocs(bs)
		cAllocs, cHas := medianAllocs(cs)

		allocNote := "n/a"
		if bHas && cHas {
			allocNote = fmt.Sprintf("%.0f -> %.0f", bAllocs, cAllocs)
		}
		fmt.Printf("%-44s %14.2f %14.2f %+7.1f%%  %s\n", name, bNs, cNs, 100*delta, allocNote)

		pass := true
		if !allocsOnly && delta > threshold {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.2f -> %.2f, threshold %.0f%%)",
				name, 100*delta, bNs, cNs, 100*threshold))
			pass = false
		}
		if bHas && cHas && cAllocs > bAllocs {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed (%.0f -> %.0f)", name, bAllocs, cAllocs))
			pass = false
		}
		row := reportRow{Name: name, BaseNsPerOp: bNs, NewNsPerOp: cNs, DeltaPct: 100 * delta, Pass: pass}
		if bHas {
			row.BaseAllocs = &bAllocs
		}
		if cHas {
			row.NewAllocs = &cAllocs
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("note: %s is not in the baseline (add it on the next baseline refresh)\n", name)
			rep.Extra = append(rep.Extra, name)
		}
	}
	sort.Strings(rep.Extra)

	rep.Failures = failures
	rep.Passed = len(failures) == 0
	if jsonPath != "" {
		// Written before the verdict so CI can archive the report from a
		// failing gate run too.
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding -json report: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing -json report: %w", err)
		}
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(failures))
	}
	fmt.Println("\nbenchmark gate passed")
	return nil
}

func parseFile(path string) (results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// parse reads Go benchmark output: lines shaped like
//
//	BenchmarkName-8   1000000   106.2 ns/op   5 extra/op   0 B/op   0 allocs/op
//
// Unknown unit columns (custom b.ReportMetric metrics) are ignored.
func parse(r io.Reader) (results, error) {
	out := make(results)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -cpu suffix
			}
		}
		var s sample
		seenNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = val
				seenNs = true
			case "allocs/op":
				s.allocsPerOp = val
				s.hasAllocs = true
			}
		}
		if seenNs {
			out[name] = append(out[name], s)
		}
	}
	return out, sc.Err()
}

func medianNs(ss []sample) float64 {
	vals := make([]float64, len(ss))
	for i, s := range ss {
		vals[i] = s.nsPerOp
	}
	return median(vals)
}

func medianAllocs(ss []sample) (float64, bool) {
	var vals []float64
	for _, s := range ss {
		if s.hasAllocs {
			vals = append(vals, s.allocsPerOp)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	return median(vals), true
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
