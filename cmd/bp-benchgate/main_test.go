package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
BenchmarkProcessFlowHit-8     	10000000	       100.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkProcessFlowHit-8     	10000000	       110.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkProcessFlowHit-8     	10000000	       105.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRecord-8             	30000000	        37.0 ns/op	         0.9992 dropped/op	       0 B/op	       0 allocs/op
PASS
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseStripsCPUSuffixAndIgnoresCustomMetrics(t *testing.T) {
	res, err := parse(strings.NewReader(baseOut))
	if err != nil {
		t.Fatal(err)
	}
	hits := res["BenchmarkProcessFlowHit"]
	if len(hits) != 3 {
		t.Fatalf("samples = %d, want 3", len(hits))
	}
	if m := medianNs(hits); m != 105.0 {
		t.Fatalf("median ns = %v", m)
	}
	rec := res["BenchmarkRecord"]
	if len(rec) != 1 || rec[0].nsPerOp != 37.0 || !rec[0].hasAllocs || rec[0].allocsPerOp != 0 {
		t.Fatalf("record sample = %+v", rec)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", strings.ReplaceAll(baseOut, "105.0", "118.0"))
	if err := run(base, cur, 0.20, false); err != nil {
		t.Fatalf("gate failed within threshold: %v", err)
	}
}

func TestGateFailsOnTimeRegression(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", `
BenchmarkProcessFlowHit-8  10000000  140.0 ns/op  0 B/op  0 allocs/op
BenchmarkRecord-8          30000000   37.0 ns/op  0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false); err == nil {
		t.Fatal("gate passed a 33% ns/op regression")
	}
}

func TestGateFailsOnAnyAllocRegression(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", `
BenchmarkProcessFlowHit-8  10000000  100.0 ns/op  16 B/op  1 allocs/op
BenchmarkRecord-8          30000000   37.0 ns/op   0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false); err == nil {
		t.Fatal("gate passed an allocs/op regression")
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", `
BenchmarkProcessFlowHit-8  10000000  100.0 ns/op  0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false); err == nil {
		t.Fatal("gate passed with a gated benchmark missing from the run")
	}
}

func TestGateToleratesExtraNewBenchmarks(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", baseOut+`
BenchmarkBrandNew-8  1000  900.0 ns/op  0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false); err != nil {
		t.Fatalf("gate failed on an extra benchmark: %v", err)
	}
}

// TestAllocsOnlySkipsTimeGate: with -allocs-only a large ns/op delta
// passes (cross-machine baseline) but an alloc increase still fails.
func TestAllocsOnlySkipsTimeGate(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	slow := write(t, "slow.txt", strings.ReplaceAll(baseOut, "105.0", "400.0"))
	if err := run(base, slow, 0.20, true); err != nil {
		t.Fatalf("allocs-only gate failed on a time-only delta: %v", err)
	}
	leaky := write(t, "leaky.txt", `
BenchmarkProcessFlowHit-8  10000000  100.0 ns/op  16 B/op  1 allocs/op
BenchmarkRecord-8          30000000   37.0 ns/op   0 B/op  0 allocs/op
`)
	if err := run(base, leaky, 0.20, true); err == nil {
		t.Fatal("allocs-only gate passed an allocs/op regression")
	}
}

func TestGateRejectsEmptyInputs(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	empty := write(t, "empty.txt", "no benchmarks here\n")
	if err := run(empty, base, 0.20, false); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if err := run(base, empty, 0.20, false); err == nil {
		t.Fatal("empty current run accepted")
	}
}
