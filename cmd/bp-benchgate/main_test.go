package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
BenchmarkProcessFlowHit-8     	10000000	       100.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkProcessFlowHit-8     	10000000	       110.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkProcessFlowHit-8     	10000000	       105.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRecord-8             	30000000	        37.0 ns/op	         0.9992 dropped/op	       0 B/op	       0 allocs/op
PASS
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseStripsCPUSuffixAndIgnoresCustomMetrics(t *testing.T) {
	res, err := parse(strings.NewReader(baseOut))
	if err != nil {
		t.Fatal(err)
	}
	hits := res["BenchmarkProcessFlowHit"]
	if len(hits) != 3 {
		t.Fatalf("samples = %d, want 3", len(hits))
	}
	if m := medianNs(hits); m != 105.0 {
		t.Fatalf("median ns = %v", m)
	}
	rec := res["BenchmarkRecord"]
	if len(rec) != 1 || rec[0].nsPerOp != 37.0 || !rec[0].hasAllocs || rec[0].allocsPerOp != 0 {
		t.Fatalf("record sample = %+v", rec)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", strings.ReplaceAll(baseOut, "105.0", "118.0"))
	if err := run(base, cur, 0.20, false, ""); err != nil {
		t.Fatalf("gate failed within threshold: %v", err)
	}
}

func TestGateFailsOnTimeRegression(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", `
BenchmarkProcessFlowHit-8  10000000  140.0 ns/op  0 B/op  0 allocs/op
BenchmarkRecord-8          30000000   37.0 ns/op  0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false, ""); err == nil {
		t.Fatal("gate passed a 33% ns/op regression")
	}
}

func TestGateFailsOnAnyAllocRegression(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", `
BenchmarkProcessFlowHit-8  10000000  100.0 ns/op  16 B/op  1 allocs/op
BenchmarkRecord-8          30000000   37.0 ns/op   0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false, ""); err == nil {
		t.Fatal("gate passed an allocs/op regression")
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", `
BenchmarkProcessFlowHit-8  10000000  100.0 ns/op  0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false, ""); err == nil {
		t.Fatal("gate passed with a gated benchmark missing from the run")
	}
}

func TestGateToleratesExtraNewBenchmarks(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", baseOut+`
BenchmarkBrandNew-8  1000  900.0 ns/op  0 B/op  0 allocs/op
`)
	if err := run(base, cur, 0.20, false, ""); err != nil {
		t.Fatalf("gate failed on an extra benchmark: %v", err)
	}
}

// TestAllocsOnlySkipsTimeGate: with -allocs-only a large ns/op delta
// passes (cross-machine baseline) but an alloc increase still fails.
func TestAllocsOnlySkipsTimeGate(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	slow := write(t, "slow.txt", strings.ReplaceAll(baseOut, "105.0", "400.0"))
	if err := run(base, slow, 0.20, true, ""); err != nil {
		t.Fatalf("allocs-only gate failed on a time-only delta: %v", err)
	}
	leaky := write(t, "leaky.txt", `
BenchmarkProcessFlowHit-8  10000000  100.0 ns/op  16 B/op  1 allocs/op
BenchmarkRecord-8          30000000   37.0 ns/op   0 B/op  0 allocs/op
`)
	if err := run(base, leaky, 0.20, true, ""); err == nil {
		t.Fatal("allocs-only gate passed an allocs/op regression")
	}
}

// TestJSONReport: the -json report carries the full comparison — rows,
// deltas, extra benchmarks, failures, verdict — and is written even when
// the gate fails, so CI can archive it either way.
func TestJSONReport(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	cur := write(t, "cur.txt", `
BenchmarkProcessFlowHit-8  10000000  140.0 ns/op  0 B/op  0 allocs/op
BenchmarkRecord-8          30000000   37.0 ns/op  0 B/op  0 allocs/op
BenchmarkBrandNew-8            1000  900.0 ns/op  0 B/op  0 allocs/op
`)
	jsonPath := filepath.Join(t.TempDir(), "gate.json")
	if err := run(base, cur, 0.20, false, jsonPath); err == nil {
		t.Fatal("gate passed a 33% ns/op regression")
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("report not written on failure: %v", err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Passed {
		t.Error("report claims the failing gate passed")
	}
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "BenchmarkProcessFlowHit") {
		t.Errorf("failures = %v, want the ProcessFlowHit regression", rep.Failures)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmark rows = %d, want 2", len(rep.Benchmarks))
	}
	var hit *reportRow
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "BenchmarkProcessFlowHit" {
			hit = &rep.Benchmarks[i]
		}
	}
	if hit == nil {
		t.Fatal("no row for BenchmarkProcessFlowHit")
	}
	if hit.Pass || hit.BaseNsPerOp != 105.0 || hit.NewNsPerOp != 140.0 {
		t.Errorf("hit row = %+v, want fail with 105 -> 140", *hit)
	}
	if hit.BaseAllocs == nil || *hit.BaseAllocs != 0 {
		t.Errorf("hit base allocs = %v, want 0", hit.BaseAllocs)
	}
	if len(rep.Extra) != 1 || rep.Extra[0] != "BenchmarkBrandNew" {
		t.Errorf("extra = %v, want [BenchmarkBrandNew]", rep.Extra)
	}

	// A clean run reports passed with no failures.
	okPath := filepath.Join(t.TempDir(), "ok.json")
	if err := run(base, base, 0.20, false, okPath); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	raw, err = os.ReadFile(okPath)
	if err != nil {
		t.Fatal(err)
	}
	rep = report{}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || len(rep.Failures) != 0 {
		t.Errorf("clean report = passed=%v failures=%v", rep.Passed, rep.Failures)
	}
}

func TestGateRejectsEmptyInputs(t *testing.T) {
	base := write(t, "base.txt", baseOut)
	empty := write(t, "empty.txt", "no benchmarks here\n")
	if err := run(empty, base, 0.20, false, ""); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if err := run(base, empty, 0.20, false, ""); err == nil {
		t.Fatal("empty current run accepted")
	}
}
