// Command bp-analyzer is the Offline Analyzer CLI (paper §V-A): it
// processes apps, extracts each app's method signatures into a
// deterministic index mapping, and writes the JSON signature database the
// Policy Enforcer decodes packets against.
//
// Apps come from either a generated corpus (the reproduction's default) or
// apk container files on disk (the file-based workflow of the paper's
// dexlib2 pipeline):
//
//	bp-analyzer -apps 2000 -seed 2019 -out bp-db.json
//	bp-analyzer -apps 50 -export-apks ./apks        # write .apk containers
//	bp-analyzer -in ./apks -out bp-db.json           # analyze from disk
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"borderpatrol/internal/analyzer"
	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/dex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bp-analyzer:", err)
		os.Exit(1)
	}
}

func run() error {
	apps := flag.Int("apps", 2000, "number of corpus apps to analyze/export")
	seed := flag.Int64("seed", 2019, "corpus generator seed")
	out := flag.String("out", "bp-db.json", "output database path ('-' for stdout)")
	in := flag.String("in", "", "directory of .apk container files to analyze instead of generating")
	exportDir := flag.String("export-apks", "", "write the generated corpus as .apk container files to this directory and exit")
	flag.Parse()

	var apks []*dex.APK
	if *in != "" {
		loaded, err := loadAPKDir(*in)
		if err != nil {
			return err
		}
		apks = loaded
	} else {
		cfg := apkgen.DefaultConfig()
		cfg.Apps = *apps
		cfg.Seed = *seed
		corpus, err := apkgen.Generate(cfg)
		if err != nil {
			return err
		}
		for _, ga := range corpus {
			apks = append(apks, ga.APK)
		}
	}

	if *exportDir != "" {
		return exportAPKs(apks, *exportDir)
	}

	db := analyzer.NewDatabase()
	methods := 0
	for _, apk := range apks {
		if err := db.Add(apk); err != nil {
			return fmt.Errorf("analyze %s: %w", apk.PackageName, err)
		}
		methods += len(apk.Signatures())
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := db.Save(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "analyzed %d apps (%d method signatures) -> %s\n", db.Len(), methods, *out)
	return nil
}

func exportAPKs(apks []*dex.APK, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, apk := range apks {
		path := filepath.Join(dir, apk.PackageName+".apk")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := apk.WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("export %s: %w", apk.PackageName, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "exported %d apk containers to %s\n", len(apks), dir)
	return nil
}

func loadAPKDir(dir string) ([]*dex.APK, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".apk") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .apk containers in %s", dir)
	}
	apks := make([]*dex.APK, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		apk, err := dex.ReadAPK(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", name, err)
		}
		apks = append(apks, apk)
	}
	return apks, nil
}
