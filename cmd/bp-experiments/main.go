// Command bp-experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). The default
// scales are reduced so a full run finishes in seconds; pass -paper-scale
// for the published workload sizes (2,000 apps, 5,000 monkey events,
// 10,000×25 stress iterations).
//
// Usage:
//
//	bp-experiments -run all
//	bp-experiments -run fig3 -paper-scale
//	bp-experiments -run fig4
//	bp-experiments -run fleet -paper-scale          # 8 gateways, 10k devices
//	bp-experiments -run fleet -fleet-gateways 3 -fleet-devices 40
//
// The fleet run shares bp-gateway's audit and metrics flags: -audit
// ships the fleet-wide enforcement trail, -metrics-addr serves the
// aggregated per-gateway scrape (add -linger to keep it up afterwards).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"borderpatrol/internal/apkgen"
	"borderpatrol/internal/cliflags"
	"borderpatrol/internal/experiments"
	"borderpatrol/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bp-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	which := flag.String("run", "all", "experiment: fig3|validation|cloud|facebook|fig4|keepalive|flowsize|replay|whitelist|dns|soak|pipeline|fleet|context|all")
	paperScale := flag.Bool("paper-scale", false, "use the paper's full workload sizes")
	seed := flag.Int64("seed", 2019, "corpus seed")
	benchJSON := flag.String("bench-json", "BENCH_pipeline.json", "machine-readable output path for the pipeline benchmark")
	fleetGateways := flag.Int("fleet-gateways", 0, "fleet experiment: gateway count (0 = 8, or 4 without -paper-scale)")
	fleetDevices := flag.Int("fleet-devices", 0, "fleet experiment: pooled devices per gateway (0 = 1250, or 150 without -paper-scale)")
	fleetBatch := flag.Int("fleet-batch", 0, "fleet experiment: gateway drain burst size (0 = 1024)")
	fleetJSON := flag.String("fleet-json", "BENCH_fleet.json", "machine-readable output path for the fleet benchmark")
	contextDevices := flag.Int("context-devices", 0, "context experiment: pooled devices (0 = 64, or 32 without -paper-scale)")
	contextJSON := flag.String("context-json", "BENCH_context.json", "machine-readable output path for the context experiment")
	auditFlags := cliflags.RegisterAudit(flag.CommandLine)
	metricsFlags := cliflags.RegisterMetrics(flag.CommandLine)
	flag.Parse()

	want := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]

	// Shared corpus for the corpus-driven experiments.
	var corpus []*apkgen.App
	needCorpus := all || want["fig3"] || want["validation"] || want["flowsize"]
	if needCorpus {
		cfg := apkgen.DefaultConfig()
		cfg.Seed = *seed
		if !*paperScale {
			cfg.Apps = 400
		}
		var err error
		corpus, err = apkgen.Generate(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generated %d-app corpus (seed %d)\n", len(corpus), *seed)
	}

	section := func(title string) {
		fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	}

	if all || want["fig3"] {
		section("E1/E2 — Figure 3: IPs-of-interest")
		events := 2000
		if *paperScale {
			events = 5000
		}
		res, err := experiments.RunFig3(experiments.Fig3Config{
			Corpus:       corpus,
			MonkeyEvents: events,
			MonkeySeed:   *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["validation"] {
		section("E3 — Validation: tracker deny-list (§VI-B1)")
		cfg := experiments.ValidationConfig{Corpus: corpus, SampleSize: 60, TopLibraries: 60}
		if !*paperScale {
			cfg.SampleSize = 30
			cfg.TopLibraries = 30
		}
		res, err := experiments.RunValidation(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["cloud"] {
		section("E4 — Case study: cloud storage (§VI-C)")
		res, err := experiments.RunCloudCaseStudy()
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["facebook"] {
		section("E5 — Case study: Facebook SDK (§VI-C)")
		res, err := experiments.RunFacebookCaseStudy()
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["fig4"] {
		section("E6 — Figure 4: per-request latency")
		opts := experiments.Fig4Options{Iterations: 1000, Runs: 3}
		if *paperScale {
			opts = experiments.DefaultFig4Options()
		}
		res, err := experiments.RunFig4(opts)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["keepalive"] {
		section("E7 — Keep-alive amortization (§VI-D)")
		iters := 200
		if *paperScale {
			iters = 2000
		}
		points, err := experiments.RunKeepAliveAmortization([]int{1, 2, 5, 10, 50, 100}, iters)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatKeepAlive(points))
	}

	if all || want["flowsize"] {
		section("E8 — Flow sizes & threshold evasion (§VII)")
		res, err := experiments.RunFlowSize(corpus, 4096)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["replay"] {
		section("E9 — Tag replay mitigation (§VII)")
		res, err := experiments.RunReplay()
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["whitelist"] {
		section("E11 — Whitelisting posture & repackaged apps (§VII)")
		res, err := experiments.RunWhitelist()
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["dns"] {
		section("E12 — DNS over UDP through the gateway (transport layer)")
		res, err := experiments.RunDNSResolution()
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	}

	if all || want["soak"] {
		section("E13 — Chaos soak: faults, degradation, restarts (virtual time)")
		cfg := experiments.DefaultSoakConfig()
		cfg.Seed = *seed
		if !*paperScale {
			// The smoke scale still exercises every churn dimension.
			cfg.Packets = 100_000
			cfg.Swaps = 20
		}
		res, err := experiments.RunSoak(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if err := res.Check(); err != nil {
			return err
		}
		fmt.Println("all soak invariants held")
	}

	if all || want["pipeline"] {
		section("E14 — Instrumented pipeline benchmark")
		cfg := experiments.DefaultPipelineBenchConfig()
		cfg.Seed = *seed
		if !*paperScale {
			cfg.Iterations = 100_000
		}
		res, err := experiments.RunPipelineBench(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if all || want["fleet"] {
		section("E15 — Fleet: multi-gateway sharded enforcement")
		fcfg := experiments.FleetRunConfig{
			Gateways:          *fleetGateways,
			DevicesPerGateway: *fleetDevices,
			BatchSize:         *fleetBatch,
		}
		if !*paperScale {
			// The reduced scale still spans several shards and thousands
			// of packets; explicit -fleet-* flags override it.
			if fcfg.Gateways == 0 {
				fcfg.Gateways = 4
			}
			if fcfg.DevicesPerGateway == 0 {
				fcfg.DevicesPerGateway = 150
			}
		}
		auditW, closeAudit, err := auditFlags.Writer()
		if err != nil {
			return err
		}
		fcfg.AuditWriter = auditW
		fcfg.Metrics = metrics.NewAggregate("gateway")
		metricsAddr, stopMetrics, err := metricsFlags.Serve(fcfg.Metrics.Handler())
		if err != nil {
			return err
		}
		defer stopMetrics()
		if metricsAddr != "" {
			fmt.Printf("metrics: http://%s/metrics\n", metricsAddr)
		}
		res, err := experiments.RunFleet(fcfg)
		// RunFleet flushed the audit pipeline on its way out; the file can
		// close before the error check so it never leaks.
		if cerr := closeAudit(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		if err := res.Check(); err != nil {
			return err
		}
		fmt.Println("all fleet invariants held")
		if *fleetJSON != "" {
			if err := res.WriteJSON(*fleetJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *fleetJSON)
		}
	}

	if all || want["context"] {
		section("E16 — Contextual policy: risk-scored predicates over a device pool")
		ccfg := experiments.ContextRunConfig{Devices: *contextDevices, Seed: *seed}
		if !*paperScale {
			if ccfg.Devices == 0 {
				ccfg.Devices = 32
			}
			ccfg.HitIterations = 100_000
		}
		res, err := experiments.RunContext(ccfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		if err := res.Check(); err != nil {
			return err
		}
		fmt.Println("all context invariants held")
		if *contextJSON != "" {
			if err := res.WriteJSON(*contextJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *contextJSON)
		}
	}

	metricsFlags.Wait(os.Stdout)
	return nil
}
