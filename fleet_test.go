package borderpatrol

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestConfigShimEquivalence pins the deprecated flat DeploymentConfig to
// the grouped Config: the same knobs through either constructor must
// produce byte-identical stats after identical traffic.
func TestConfigShimEquivalence(t *testing.T) {
	flat := DeploymentConfig{
		Policy:         `{[deny][library]["com/flurry"]}`,
		DefaultVerdict: VerdictAllow,
		FlowCacheSize:  128,
		FlowTTL:        2 * time.Minute,
		GatewayWorkers: 2,
		DeviceAddr:     netip.MustParseAddr("10.9.0.2"),
		AuditQueueCap:  64,
	}
	exercise := func(dep *Deployment) DeploymentStats {
		t.Helper()
		app, err := dep.InstallApp(demoAPK(), demoFuncs())
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range []string{"download", "upload", "analytics"} {
			if _, err := dep.Exercise(app, fn); err != nil {
				t.Fatal(err)
			}
		}
		st := dep.Stats()
		if err := dep.Close(); err != nil {
			t.Fatal(err)
		}
		return st
	}

	old, err := NewDeployment(flat)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := New(flat.Config())
	if err != nil {
		t.Fatal(err)
	}
	oldStats, newStats := exercise(old), exercise(grouped)
	if !reflect.DeepEqual(oldStats, newStats) {
		t.Fatalf("shim diverged:\nold %+v\nnew %+v", oldStats, newStats)
	}
	if oldStats.PacketsDropped == 0 || oldStats.PacketsAccepted == 0 {
		t.Fatalf("degenerate run proves nothing: %+v", oldStats)
	}
}

const fleetPolicyV1 = `
// fleet-wide rules
{[deny][library]["com/flurry"]}
//@group eng
{[deny][method]["Lcom/corp/files/SyncEngine;->upload()V"]}
//@group sales
{[allow][library]["com/corp"]}
`

func newTestFleet(t *testing.T) *Fleet {
	t.Helper()
	f, err := NewFleet(FleetConfig{
		Policy: fleetPolicyV1,
		Gateways: []GatewaySpec{
			{Name: "gwA", Subnet: netip.MustParsePrefix("10.1.0.0/16"), Groups: []string{"eng"}},
			{Name: "gwB", Subnet: netip.MustParsePrefix("10.2.0.0/16"), Groups: []string{"sales"}},
		},
		Poll:         time.Hour, // all progress must come from the watch
		WatchTimeout: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestFleetShardedEnforcement: each gateway enforces the global rules
// plus its own group's — and never another group's.
func TestFleetShardedEnforcement(t *testing.T) {
	f := newTestFleet(t)
	depA, depB := f.Deployment("gwA"), f.Deployment("gwB")
	if depA == nil || depB == nil || depA.Name() != "gwA" {
		t.Fatalf("deployment lookup broken: %v %v", depA, depB)
	}
	appA, err := depA.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}
	appB, err := depB.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}

	// The global tracker rule applies everywhere.
	for name, pair := range map[string]struct {
		dep *Deployment
		app *App
	}{"gwA": {depA, appA}, "gwB": {depB, appB}} {
		out, err := pair.dep.Exercise(pair.app, "analytics")
		if err != nil {
			t.Fatal(err)
		}
		if out[0].Delivered {
			t.Fatalf("%s: global tracker rule not enforced", name)
		}
	}
	// The eng group's upload rule binds gwA only; its appearance on gwB
	// would be a cross-group policy leak.
	if out, _ := depA.Exercise(appA, "upload"); out[0].Delivered {
		t.Fatal("gwA: eng upload rule not enforced")
	}
	if out, _ := depB.Exercise(appB, "upload"); !out[0].Delivered {
		t.Fatal("gwB: eng rule leaked into the sales shard")
	}
}

// TestFleetPushPolicyOneWatchRound: one PushPolicy reaches every gateway
// in a single watch round — counters, not sleeps — and only the gateways
// whose shard changed recompile.
func TestFleetPushPolicyOneWatchRound(t *testing.T) {
	f := newTestFleet(t)
	depA, depB := f.Deployment("gwA"), f.Deployment("gwB")
	if f.PolicyRev() != 1 {
		t.Fatalf("seed revision = %d", f.PolicyRev())
	}

	// A fleet-wide edit (global section) changes every shard: each store
	// applies exactly once, within exactly one watch round.
	v2 := strings.Replace(fleetPolicyV1, `["com/flurry"]`, `["com/flurry/sdk"]`, 1)
	if err := f.PushPolicy(v2); err != nil {
		t.Fatal(err)
	}
	for _, dep := range f.Deployments() {
		s := dep.PolicyStoreStats()
		if s.Applied != 2 || s.WatchRounds != 1 || s.Unchanged != 0 || s.Failures != 0 {
			t.Fatalf("%s after global push: %+v", dep.Name(), s)
		}
	}

	// A single-group edit recompiles only that shard; the other gateway
	// sees the round but keeps its compiled rules.
	v3 := strings.Replace(v2, `{[allow][library]["com/corp"]}`, `{[allow][library]["com/corp/files"]}`, 1)
	if err := f.PushPolicy(v3); err != nil {
		t.Fatal(err)
	}
	if s := depB.PolicyStoreStats(); s.Applied != 3 || s.WatchRounds != 2 {
		t.Fatalf("gwB after sales push: %+v", s)
	}
	if s := depA.PolicyStoreStats(); s.Applied != 2 || s.Unchanged != 1 || s.WatchRounds != 2 {
		t.Fatalf("gwA after sales push: %+v", s)
	}

	// Identical document: revision and counters stand still.
	rev := f.PolicyRev()
	if err := f.PushPolicy(v3); err != nil {
		t.Fatal(err)
	}
	if f.PolicyRev() != rev {
		t.Fatal("identical push revisioned the hub")
	}

	// A malformed document is rejected before it reaches the hub.
	if err := f.PushPolicy("//@groups typo\n" + v3); err == nil {
		t.Fatal("malformed push accepted")
	}
	if f.PolicyRev() != rev {
		t.Fatal("malformed push revisioned the hub")
	}
}

// TestFleetAggregatedMetrics: one scrape covers every gateway, each
// series labelled with its gateway, HELP/TYPE emitted once per family.
func TestFleetAggregatedMetrics(t *testing.T) {
	f := newTestFleet(t)
	depA := f.Deployment("gwA")
	app, err := depA.InstallApp(demoAPK(), demoFuncs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := depA.Exercise(app, "download"); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := f.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`bp_enforcer_verdicts_total{gateway="gwA",decision="allow"}`,
		`bp_enforcer_verdicts_total{gateway="gwB",decision="allow"} 0`,
		`bp_policy_watch_rounds_total{gateway="gwA"}`,
		`bp_netsim_faults_total{gateway="fleet",stage="drop"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if got := strings.Count(out, "# TYPE bp_enforcer_verdicts_total counter"); got != 1 {
		t.Errorf("TYPE emitted %d times", got)
	}
}
